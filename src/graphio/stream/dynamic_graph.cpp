#include "graphio/stream/dynamic_graph.hpp"

#include <algorithm>
#include <utility>

#include "graphio/support/contracts.hpp"

namespace graphio::stream {

namespace {

/// Erases one occurrence of `value` (the last, so the common remove-then-
/// re-add pattern stays cheap); returns the erased index, or -1 when
/// absent — the journal records it so rollback reinserts at the exact
/// spot.
std::ptrdiff_t erase_one(std::vector<VertexId>& list, VertexId value) {
  const auto rit = std::find(list.rbegin(), list.rend(), value);
  if (rit == list.rend()) return -1;
  const auto it = std::next(rit).base();
  const std::ptrdiff_t pos = it - list.begin();
  list.erase(it);
  return pos;
}

}  // namespace

DynamicGraph::DynamicGraph(const Digraph& g) {
  const std::int64_t n = g.num_vertices();
  out_.resize(static_cast<std::size_t>(n));
  in_.resize(static_cast<std::size_t>(n));
  alive_.assign(static_cast<std::size_t>(n), true);
  names_.resize(static_cast<std::size_t>(n));
  num_alive_ = n;
  num_edges_ = g.num_edges();
  for (VertexId v = 0; v < n; ++v) {
    const auto i = static_cast<std::size_t>(v);
    out_[i].assign(g.children(v).begin(), g.children(v).end());
    in_[i].assign(g.parents(v).begin(), g.parents(v).end());
    if (!g.name(v).empty()) names_[i] = g.name(v);
  }
}

void DynamicGraph::check_alive(VertexId v, const char* role) const {
  GIO_EXPECTS_MSG(v >= 0 && v < id_limit(),
                  std::string(role) + " vertex " + std::to_string(v) +
                      " does not exist (ids allocated: " +
                      std::to_string(id_limit()) + ")");
  GIO_EXPECTS_MSG(alive_[static_cast<std::size_t>(v)],
                  std::string(role) + " vertex " + std::to_string(v) +
                      " was removed");
}

VertexId DynamicGraph::add_vertex() {
  out_.emplace_back();
  in_.emplace_back();
  alive_.push_back(true);
  names_.emplace_back();
  ++num_alive_;
  if (journaling_) {
    Undo undo;
    undo.kind = Undo::Kind::kAddVertex;
    journal_.push_back(std::move(undo));
  }
  return id_limit() - 1;
}

void DynamicGraph::remove_vertex(VertexId v) {
  check_alive(v, "removed");
  const auto i = static_cast<std::size_t>(v);
  // Drop every incident multiplicity from the neighbors' mirror lists —
  // one erase per list occurrence, so parallel edges come out exactly.
  // Self-loops cannot exist, so v never appears in its own lists.
  num_edges_ -= static_cast<std::int64_t>(out_[i].size() + in_[i].size());
  Undo undo;
  undo.kind = Undo::Kind::kRemoveVertex;
  undo.v = v;
  for (VertexId w : out_[i]) {
    const std::ptrdiff_t pos = erase_one(in_[static_cast<std::size_t>(w)], v);
    GIO_ASSERT(pos >= 0);
    if (journaling_)
      undo.out_mirror.emplace_back(w, static_cast<std::size_t>(pos));
  }
  for (VertexId w : in_[i]) {
    const std::ptrdiff_t pos = erase_one(out_[static_cast<std::size_t>(w)], v);
    GIO_ASSERT(pos >= 0);
    if (journaling_)
      undo.in_mirror.emplace_back(w, static_cast<std::size_t>(pos));
  }
  if (journaling_) {
    undo.out_adj = std::move(out_[i]);
    undo.in_adj = std::move(in_[i]);
    undo.name = std::move(names_[i]);
    journal_.push_back(std::move(undo));
  }
  out_[i].clear();
  out_[i].shrink_to_fit();
  in_[i].clear();
  in_[i].shrink_to_fit();
  names_[i].clear();
  alive_[i] = false;
  --num_alive_;
}

void DynamicGraph::add_edge(VertexId u, VertexId v) {
  check_alive(u, "edge source");
  check_alive(v, "edge target");
  GIO_EXPECTS_MSG(u != v, "self-loops are not allowed");
  out_[static_cast<std::size_t>(u)].push_back(v);
  in_[static_cast<std::size_t>(v)].push_back(u);
  ++num_edges_;
  if (journaling_) {
    Undo undo;
    undo.kind = Undo::Kind::kAddEdge;
    undo.u = u;
    undo.v = v;
    journal_.push_back(std::move(undo));
  }
}

void DynamicGraph::remove_edge(VertexId u, VertexId v) {
  check_alive(u, "edge source");
  check_alive(v, "edge target");
  const std::ptrdiff_t out_pos =
      erase_one(out_[static_cast<std::size_t>(u)], v);
  GIO_EXPECTS_MSG(out_pos >= 0,
                  "edge " + std::to_string(u) + " -> " + std::to_string(v) +
                      " does not exist");
  const std::ptrdiff_t in_pos = erase_one(in_[static_cast<std::size_t>(v)], u);
  GIO_ASSERT(in_pos >= 0);
  --num_edges_;
  if (journaling_) {
    Undo undo;
    undo.kind = Undo::Kind::kRemoveEdge;
    undo.u = u;
    undo.v = v;
    undo.out_pos = static_cast<std::size_t>(out_pos);
    undo.in_pos = static_cast<std::size_t>(in_pos);
    journal_.push_back(std::move(undo));
  }
}

void DynamicGraph::begin_journal() {
  journal_.clear();
  journaling_ = true;
}

void DynamicGraph::commit_journal() {
  journal_.clear();
  journaling_ = false;
}

void DynamicGraph::rollback_journal() {
  GIO_EXPECTS_MSG(journaling_,
                  "rollback_journal without a begin_journal in effect");
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it)
    undo_one(*it);
  journal_.clear();
  journaling_ = false;
}

void DynamicGraph::undo_one(const Undo& undo) {
  switch (undo.kind) {
    case Undo::Kind::kAddVertex: {
      // Later undos already removed anything that referenced the tail id.
      GIO_ASSERT(!out_.empty() && out_.back().empty() && in_.back().empty() &&
                 alive_.back());
      out_.pop_back();
      in_.pop_back();
      alive_.pop_back();
      names_.pop_back();
      --num_alive_;
      return;
    }
    case Undo::Kind::kAddEdge: {
      std::vector<VertexId>& ou = out_[static_cast<std::size_t>(undo.u)];
      std::vector<VertexId>& iv = in_[static_cast<std::size_t>(undo.v)];
      // The edge was pushed at the back; every later append is undone by
      // now, so the back is exactly this edge.
      GIO_ASSERT(!ou.empty() && ou.back() == undo.v);
      GIO_ASSERT(!iv.empty() && iv.back() == undo.u);
      ou.pop_back();
      iv.pop_back();
      --num_edges_;
      return;
    }
    case Undo::Kind::kRemoveEdge: {
      std::vector<VertexId>& ou = out_[static_cast<std::size_t>(undo.u)];
      std::vector<VertexId>& iv = in_[static_cast<std::size_t>(undo.v)];
      ou.insert(ou.begin() + static_cast<std::ptrdiff_t>(undo.out_pos),
                undo.v);
      iv.insert(iv.begin() + static_cast<std::ptrdiff_t>(undo.in_pos),
                undo.u);
      ++num_edges_;
      return;
    }
    case Undo::Kind::kRemoveVertex: {
      const auto i = static_cast<std::size_t>(undo.v);
      // Reverse of execution order: the in_-side mirrors were erased
      // last, so they are restored first; within each side, newest erase
      // first keeps every recorded index exact.
      for (auto it = undo.in_mirror.rbegin(); it != undo.in_mirror.rend();
           ++it) {
        std::vector<VertexId>& list =
            out_[static_cast<std::size_t>(it->first)];
        list.insert(list.begin() + static_cast<std::ptrdiff_t>(it->second),
                    undo.v);
      }
      for (auto it = undo.out_mirror.rbegin(); it != undo.out_mirror.rend();
           ++it) {
        std::vector<VertexId>& list =
            in_[static_cast<std::size_t>(it->first)];
        list.insert(list.begin() + static_cast<std::ptrdiff_t>(it->second),
                    undo.v);
      }
      out_[i] = undo.out_adj;
      in_[i] = undo.in_adj;
      names_[i] = undo.name;
      alive_[i] = true;
      ++num_alive_;
      num_edges_ +=
          static_cast<std::int64_t>(undo.out_adj.size() + undo.in_adj.size());
      return;
    }
  }
}

std::span<const VertexId> DynamicGraph::children(VertexId v) const {
  check_alive(v, "queried");
  return out_[static_cast<std::size_t>(v)];
}

std::span<const VertexId> DynamicGraph::parents(VertexId v) const {
  check_alive(v, "queried");
  return in_[static_cast<std::size_t>(v)];
}

void DynamicGraph::set_name(VertexId v, std::string name) {
  check_alive(v, "named");
  names_[static_cast<std::size_t>(v)] = std::move(name);
}

const std::string& DynamicGraph::name(VertexId v) const {
  check_alive(v, "queried");
  return names_[static_cast<std::size_t>(v)];
}

Digraph DynamicGraph::materialize(
    std::vector<VertexId>* external_of_local,
    std::vector<VertexId>* local_of_external) const {
  std::vector<VertexId> local_of(static_cast<std::size_t>(id_limit()), -1);
  if (external_of_local != nullptr) {
    external_of_local->clear();
    external_of_local->reserve(static_cast<std::size_t>(num_alive_));
  }
  VertexId next = 0;
  for (VertexId v = 0; v < id_limit(); ++v) {
    if (!alive_[static_cast<std::size_t>(v)]) continue;
    local_of[static_cast<std::size_t>(v)] = next++;
    if (external_of_local != nullptr) external_of_local->push_back(v);
  }
  Digraph g(num_alive_);
  for (VertexId v = 0; v < id_limit(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (!alive_[i]) continue;
    const VertexId lv = local_of[i];
    for (VertexId w : out_[i])
      g.add_edge(lv, local_of[static_cast<std::size_t>(w)]);
    if (!names_[i].empty()) g.set_name(lv, names_[i]);
  }
  if (local_of_external != nullptr) *local_of_external = std::move(local_of);
  return g;
}

}  // namespace graphio::stream
