#include "graphio/stream/session.hpp"

#include <algorithm>
#include <utility>

#include "graphio/engine/fingerprint.hpp"
#include "graphio/engine/graph_spec.hpp"
#include "graphio/faults/fault_injection.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/timer.hpp"
#include "graphio/telemetry/metrics.hpp"
#include "graphio/telemetry/trace.hpp"

namespace graphio::stream {

namespace {

// Registry mirrors of Stats — process-wide lifetime totals across every
// StreamSession instance.
struct StreamMetrics {
  telemetry::Counter& patches;
  telemetry::Counter& mutations;
  telemetry::Counter& dirty_components;
  telemetry::Counter& clean_components;
  telemetry::Counter& evicted;
  telemetry::Counter& queries;
};

StreamMetrics& stream_metrics() {
  auto& reg = telemetry::MetricsRegistry::global();
  static StreamMetrics metrics{reg.counter("stream.patches"),
                               reg.counter("stream.mutations"),
                               reg.counter("stream.dirty_components"),
                               reg.counter("stream.clean_components"),
                               reg.counter("stream.evicted"),
                               reg.counter("stream.queries")};
  return metrics;
}

}  // namespace

StreamSession::StreamSession(std::string name,
                             std::shared_ptr<store::ArtifactStore> store)
    : name_(std::move(name)),
      engine_(store == nullptr
                  ? std::make_unique<engine::Engine>()
                  : std::make_unique<engine::Engine>(std::move(store))) {
  GIO_EXPECTS_MSG(!name_.empty(), "stream session needs a name");
  GIO_EXPECTS_MSG(
      !engine::GraphSpec::try_parse(name_).has_value(),
      "stream graph name '" + name_ +
          "' collides with a family spec or graph file — pick a plain name");
}

PatchReport StreamSession::load(const std::string& spec) {
  const Digraph g = engine::GraphSpec::parse(spec).build();
  const std::lock_guard<std::mutex> lock(mutex_);
  return load_locked(g);
}

PatchReport StreamSession::load(const Digraph& graph) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return load_locked(graph);
}

PatchReport StreamSession::load_locked(const Digraph& graph) {
  telemetry::Span span("stream.load");
  WallTimer timer;
  const std::int64_t evicted_before = stats_.evicted;
  graph_ = DynamicGraph(graph);
  components_.reset(graph_);
  // Loading replaces everything: evict the previous graph's memory-tier
  // entries this session refcounts (a shared store's disk tier, being
  // append-only, is untouched) and re-fingerprint from scratch.
  for (const auto& [fp, count] : fingerprint_refcount_) {
    stats_.evicted += engine_->artifact_store()->erase(fp);
    (void)count;
  }
  component_fingerprint_.clear();
  fingerprint_refcount_.clear();
  loaded_ = true;
  PatchReport report = finish_patch_locked(
      Patch{}, components_.component_ids(), evicted_before, timer.seconds());
  span.attr("graph", name_)
      .attr("vertices", report.vertices)
      .attr("edges", report.edges)
      .attr("components", report.components);
  return report;
}

PatchReport StreamSession::apply(const Patch& patch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  GIO_EXPECTS_MSG(loaded_, "stream session '" + name_ +
                               "' has no graph loaded yet");
  telemetry::Span span("stream.patch");
  WallTimer timer;
  const std::int64_t evicted_before = stats_.evicted;
  // Atomicity by inverse-mutation journal: every mutation records its
  // exact inverse as it applies, so a failing mutation unwinds in
  // O(state the patch touched) — successful patches (the common case) no
  // longer pay the O(n + m) snapshot copy the rollback path used to
  // demand up front.
  graph_.begin_journal();
  components_.begin_patch();
  for (std::size_t i = 0; i < patch.mutations.size(); ++i) {
    const Mutation& m = patch.mutations[i];
    try {
      // Mid-patch fault seam: fires between mutations, after some have
      // already applied — exactly the state the rollback journal exists
      // to unwind.
      faults::inject("stream.apply");
      switch (m.op) {
        case MutationOp::kAddVertex:
          for (std::int64_t k = 0; k < m.count; ++k)
            components_.on_add_vertex(graph_.add_vertex());
          break;
        case MutationOp::kRemoveVertex:
          // Notify first: the labels must still cover v.
          components_.on_remove_vertex(m.v);
          graph_.remove_vertex(m.v);
          break;
        case MutationOp::kAddEdge:
          graph_.add_edge(m.u, m.v);
          components_.on_add_edge(m.u, m.v);
          break;
        case MutationOp::kRemoveEdge:
          graph_.remove_edge(m.u, m.v);
          components_.on_remove_edge(m.u, m.v);
          break;
      }
    } catch (const faults::FaultInjected&) {
      // Same unwind as a real failure, but rethrown intact so the serve
      // layer can report the fault's kind/site in its structured error.
      graph_.rollback_journal();
      components_.rollback_patch();
      throw;
    } catch (const std::exception& e) {
      graph_.rollback_journal();
      components_.rollback_patch();
      GIO_EXPECTS_MSG(false, "mutation " + std::to_string(i + 1) + "/" +
                                 std::to_string(patch.mutations.size()) +
                                 " (" + std::string(to_string(m.op)) +
                                 ") failed: " + e.what());
    }
  }
  components_.flush(graph_);
  graph_.commit_journal();
  PatchReport report = finish_patch_locked(patch, components_.dirty(),
                                           evicted_before, timer.seconds());
  span.attr("graph", name_)
      .attr("label", patch.label)
      .attr("mutations", report.mutations)
      .attr("dirty", report.dirty_components)
      .attr("clean", report.clean_components);
  return report;
}

void StreamSession::refingerprint_locked(const std::vector<int>& dirty) {
  auto release = [this](std::uint64_t fp) {
    if (--fingerprint_refcount_.at(fp) == 0) {
      fingerprint_refcount_.erase(fp);
      stats_.evicted += engine_->artifact_store()->erase(fp);
    }
  };
  // Dirty components: compute the successor fingerprint FIRST, adopt any
  // retained eigenbasis old→new, and only then release the old content —
  // refcount eviction at zero also drops the content's bases, so the
  // adopt-before-release order is what keeps a predecessor basis alive
  // for the warm solve of the very component whose patch retired it.
  // Incrementing the new fingerprint before releasing the old also keeps
  // store entries alive when a patch leaves a component's content equal.
  predecessor_fingerprint_.clear();
  const bool warm = engine_->artifact_store()->eigenbasis_budget() > 0;
  for (int c : dirty) {
    const std::uint64_t fp =
        engine::graph_fingerprint(components_.subgraph(graph_, c));
    const auto it = component_fingerprint_.find(c);
    if (it == component_fingerprint_.end()) {
      component_fingerprint_.emplace(c, fp);
      ++fingerprint_refcount_[fp];
      continue;
    }
    const std::uint64_t old_fp = it->second;
    if (old_fp == fp) continue;  // content returned unchanged
    ++fingerprint_refcount_[fp];
    predecessor_fingerprint_.emplace(c, old_fp);
    if (warm) engine_->artifact_store()->adopt_eigenbasis(old_fp, fp);
    it->second = fp;
    release(old_fp);
  }
  // Components that died this patch (merged away, fully removed): equal
  // content surviving elsewhere keeps its refcount and cache entries;
  // eviction fires only when a content's last instance goes.
  for (auto it = component_fingerprint_.begin();
       it != component_fingerprint_.end();) {
    if (components_.alive(it->first)) {
      ++it;
      continue;
    }
    release(it->second);
    it = component_fingerprint_.erase(it);
  }
}

std::uint64_t StreamSession::combined_fingerprint_locked() const {
  // Order-independent combination: FNV over the sorted multiset of
  // per-component fingerprints. fingerprint_refcount_ IS that multiset,
  // already sorted by key.
  std::uint64_t h = engine::fnv64_begin();
  std::int64_t components = 0;
  for (const auto& [fp, count] : fingerprint_refcount_) {
    for (int i = 0; i < count; ++i) h = engine::fnv64_mix(h, fp);
    components += count;
  }
  h = engine::fnv64_mix(h, static_cast<std::uint64_t>(components));
  return h;
}

PatchReport StreamSession::finish_patch_locked(const Patch& patch,
                                               const std::vector<int>& dirty,
                                               std::int64_t evicted_before,
                                               double seconds) {
  refingerprint_locked(dirty);
  // Hand the engine the decomposition this session already maintains —
  // membership straight from DynamicComponents, fingerprints from the
  // incremental re-hash above — so the query path never decomposes or
  // re-fingerprints: clean components resolve from the artifact store
  // by fingerprint alone, and only dirty ones materialize. The graph
  // itself goes over lazily: compaction ascends, so external ids map to
  // would-be-materialized local ids by an alive-prefix count, and a
  // query that only needs per-component artifacts (every method except
  // pebble-exact and monolithic spectra) never pays the O(n + m)
  // whole-graph materialization at all.
  std::vector<VertexId> local_of(static_cast<std::size_t>(graph_.id_limit()),
                                 -1);
  VertexId next_local = 0;
  for (VertexId v = 0; v < graph_.id_limit(); ++v)
    if (graph_.alive(v)) local_of[static_cast<std::size_t>(v)] = next_local++;
  const std::vector<int> ids = components_.component_ids();
  engine::ComponentSeed seed;
  for (int c : ids) {
    engine::ComponentSeed::Component comp;
    comp.fingerprint = component_fingerprint_.at(c);
    const std::vector<VertexId>& ext = components_.vertices_of(c);
    comp.vertices.reserve(ext.size());
    for (VertexId v : ext) {
      comp.vertices.push_back(local_of[static_cast<std::size_t>(v)]);
      comp.edges += static_cast<std::int64_t>(graph_.children(v).size());
    }
    // Session-stable external ids let a retained eigenbasis remap its
    // rows across vertex add/remove patches; the predecessor fingerprint
    // is the warm-start fallback key for this patch's dirty components.
    comp.external_ids = ext;
    const auto pred = predecessor_fingerprint_.find(c);
    if (pred != predecessor_fingerprint_.end()) {
      comp.predecessor = pred->second;
      comp.has_predecessor = true;
    }
    seed.components.push_back(std::move(comp));
  }
  // The callbacks capture `this` and read graph_/components_ without the
  // session mutex: safe, because every call into them happens inside
  // evaluate() (which holds the mutex) and the next patch replaces the
  // installed graph — and with it every outstanding callback — before it
  // mutates anything.
  engine::LazyGraph lazy;
  lazy.vertices = graph_.num_vertices();
  lazy.edges = graph_.num_edges();
  lazy.materialize = [this] { return graph_.materialize(); };
  lazy.component = [this, ids](int i) {
    return components_.subgraph(graph_, ids[static_cast<std::size_t>(i)]);
  };
  lazy.max_out_degree = [this] {
    std::int64_t best = 0;
    for (VertexId v = 0; v < graph_.id_limit(); ++v)
      if (graph_.alive(v))
        best = std::max(best,
                        static_cast<std::int64_t>(graph_.children(v).size()));
    return best;
  };
  lazy.max_in_degree = [this] {
    std::int64_t best = 0;
    for (VertexId v = 0; v < graph_.id_limit(); ++v)
      if (graph_.alive(v))
        best = std::max(best,
                        static_cast<std::int64_t>(graph_.parents(v).size()));
    return best;
  };
  engine_->install_graph(name_, std::move(lazy), std::move(seed));

  PatchReport report;
  report.graph = name_;
  report.label = patch.label;
  report.mutations = patch.size();
  report.vertices = graph_.num_vertices();
  report.edges = graph_.num_edges();
  report.components = components_.count();
  report.dirty_components = static_cast<int>(dirty.size());
  report.clean_components = components_.count() - report.dirty_components;
  report.fingerprint = engine::fingerprint_hex(combined_fingerprint_locked());
  report.seconds = seconds;

  ++stats_.patches;
  stats_.mutations += report.mutations;
  stats_.dirty_components += report.dirty_components;
  stats_.clean_components += report.clean_components;
  // refingerprint_locked (and, for loads, the pre-reset sweep) advanced
  // stats_.evicted; the report carries this patch's share.
  report.evicted = stats_.evicted - evicted_before;
  last_dirty_ = report.dirty_components;
  last_clean_ = report.clean_components;
  StreamMetrics& metrics = stream_metrics();
  metrics.patches.increment();
  metrics.mutations.add(report.mutations);
  metrics.dirty_components.add(report.dirty_components);
  metrics.clean_components.add(report.clean_components);
  metrics.evicted.add(report.evicted);
  return report;
}

engine::BoundReport StreamSession::evaluate(engine::BoundRequest request) {
  const std::lock_guard<std::mutex> lock(mutex_);
  GIO_EXPECTS_MSG(loaded_, "stream session '" + name_ +
                               "' has no graph loaded yet");
  request.spec = name_;
  request.graph.reset();
  if (request.name.empty()) request.name = name_;
  // The warm-start layer follows the store's eigenbasis budget: with a
  // budget set, converged component bases are retained and patched
  // successors warm-start from them; at 0 the query path is bit-identical
  // to the cold one (retention is excluded from the options key).
  request.spectral.retain_basis =
      engine_->artifact_store()->eigenbasis_budget() > 0;
  ++stats_.queries;
  stream_metrics().queries.increment();
  telemetry::Span span("stream.query");
  span.attr("graph", name_)
      .attr("dirty", last_dirty_)
      .attr("clean", last_clean_);
  engine::BoundReport report = engine_->evaluate(request);
  // Stream lineage: the per-patch dirty/clean split this query paid for,
  // plus the durable session identity (component-multiset fingerprint —
  // the key serve's ResultStore uses for stream rows).
  report.provenance.kind = "stream";
  report.provenance.graph = name_;
  report.provenance.fingerprint = combined_fingerprint_locked();
  report.provenance.dirty = last_dirty_;
  report.provenance.clean = last_clean_;
  return report;
}

std::uint64_t StreamSession::fingerprint() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return combined_fingerprint_locked();
}

Digraph StreamSession::graph() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  GIO_EXPECTS_MSG(loaded_, "stream session '" + name_ +
                               "' has no graph loaded yet");
  return graph_.materialize();
}

std::int64_t StreamSession::num_vertices() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return graph_.num_vertices();
}

std::int64_t StreamSession::num_edges() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return graph_.num_edges();
}

bool StreamSession::loaded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return loaded_;
}

StreamSession::Stats StreamSession::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace graphio::stream
