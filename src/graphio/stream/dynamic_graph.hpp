// DynamicGraph — a mutable computation graph with stable external ids.
//
// Digraph (graph/digraph.hpp) is append-only by design: every analysis in
// the library consumes a frozen graph. A stream of patches needs the
// complement — removal support and ids that survive removal, so mutation
// k+1 can reference vertices created before mutation k deleted others.
// DynamicGraph keeps adjacency per external id with an alive flag; dead
// ids are never reused. materialize() compacts the alive vertices (in
// ascending external-id order) into a frozen Digraph for analysis; the
// compaction preserves per-vertex adjacency-list order, so a subgraph of
// the materialized graph is bit-identical — same content fingerprint —
// to one extracted directly from the live structure.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graphio/graph/digraph.hpp"

namespace graphio::stream {

class DynamicGraph {
 public:
  DynamicGraph() = default;
  /// Seeds from a frozen graph: external id i is Digraph vertex i.
  explicit DynamicGraph(const Digraph& g);

  /// Appends one alive isolated vertex; returns its external id.
  VertexId add_vertex();
  /// Removes an alive vertex and every incident edge (all multiplicities).
  /// The id stays dead forever.
  void remove_vertex(VertexId v);
  /// Adds one u -> v edge (parallel edges accumulate; self-loops throw).
  void add_edge(VertexId u, VertexId v);
  /// Removes one multiplicity of u -> v; throws if the edge is absent.
  void remove_edge(VertexId u, VertexId v);

  /// Ids ever allocated (alive + dead) — the bound on valid external ids.
  [[nodiscard]] std::int64_t id_limit() const noexcept {
    return static_cast<std::int64_t>(out_.size());
  }
  [[nodiscard]] std::int64_t num_vertices() const noexcept {
    return num_alive_;
  }
  [[nodiscard]] std::int64_t num_edges() const noexcept { return num_edges_; }
  [[nodiscard]] bool alive(VertexId v) const noexcept {
    return v >= 0 && v < id_limit() && alive_[static_cast<std::size_t>(v)];
  }

  /// Out-/in-neighbors of an alive vertex, with multiplicity.
  [[nodiscard]] std::span<const VertexId> children(VertexId v) const;
  [[nodiscard]] std::span<const VertexId> parents(VertexId v) const;

  void set_name(VertexId v, std::string name);
  [[nodiscard]] const std::string& name(VertexId v) const;

  /// Freezes the alive vertices into a Digraph: external ids compact to
  /// 0..n-1 in ascending order; edges keep per-vertex list order and
  /// names survive. When non-null, `external_of_local` receives the
  /// external id of each materialized vertex, and `local_of_external`
  /// the inverse map over the full id range (-1 for dead ids) — the
  /// compaction builds it anyway, so callers translating component
  /// membership need no second pass.
  [[nodiscard]] Digraph materialize(
      std::vector<VertexId>* external_of_local = nullptr,
      std::vector<VertexId>* local_of_external = nullptr) const;

  // Inverse-mutation journal: while active, every mutation records its
  // exact inverse (list positions included), so a failed patch rolls back
  // in O(state the patch touched) instead of the O(n + m) a full
  // snapshot costs on EVERY patch, successful ones included. Rollback is
  // bit-exact: adjacency-list order, names, and counters all return to
  // the begin_journal() state — same content fingerprints.

  /// Starts recording. O(1); any previous journal is discarded.
  void begin_journal();
  /// Accepts the mutations since begin_journal and drops the journal.
  void commit_journal();
  /// Reverts every mutation since begin_journal, newest first.
  void rollback_journal();

 private:
  struct Undo {
    enum class Kind { kAddVertex, kAddEdge, kRemoveEdge, kRemoveVertex };
    Kind kind;
    VertexId u = -1;
    VertexId v = -1;
    /// kRemoveEdge: positions the edge occupied in out_[u] / in_[v].
    std::size_t out_pos = 0;
    std::size_t in_pos = 0;
    /// kRemoveVertex: v's former adjacency (moved out, not copied) …
    std::vector<VertexId> out_adj;
    std::vector<VertexId> in_adj;
    /// … and where each mirror occurrence was erased, in erase order:
    /// out_mirror = (w, index of v in in_[w]), in_mirror = (w, index of v
    /// in out_[w]). Undone in reverse, so every index is exact.
    std::vector<std::pair<VertexId, std::size_t>> out_mirror;
    std::vector<std::pair<VertexId, std::size_t>> in_mirror;
    std::string name;
  };

  void check_alive(VertexId v, const char* role) const;
  void undo_one(const Undo& undo);

  std::vector<std::vector<VertexId>> out_;
  std::vector<std::vector<VertexId>> in_;
  std::vector<bool> alive_;
  std::vector<std::string> names_;
  std::int64_t num_alive_ = 0;
  std::int64_t num_edges_ = 0;
  bool journaling_ = false;
  std::vector<Undo> journal_;
};

}  // namespace graphio::stream
