// Row-major dense matrix.
//
// Used for the dense symmetric eigensolver (graphs small enough to afford
// O(n³)), for the projected matrices inside Lanczos, and throughout the
// tests. Value semantics, bounds-checked in debug builds.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graphio/support/contracts.hpp"

namespace graphio::la {

class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows × cols zero matrix.
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static DenseMatrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    GIO_ASSERT(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    GIO_ASSERT(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Contiguous row access.
  [[nodiscard]] std::span<double> row(std::size_t i) {
    GIO_ASSERT(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    GIO_ASSERT(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }

  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }

  /// y = A x.
  void matvec(std::span<const double> x, std::span<double> y) const;

  /// Returns Aᵀ.
  [[nodiscard]] DenseMatrix transposed() const;

  /// Returns A · B (test helper; not performance-tuned).
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

  /// max |A_ij − A_ji|; 0 for perfectly symmetric matrices.
  [[nodiscard]] double symmetry_error() const;

  /// max |A_ij − B_ij| (matrices must have equal shape).
  [[nodiscard]] double max_abs_diff(const DenseMatrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace graphio::la
