// Power iteration for extremal eigenvalues of sparse symmetric matrices.
//
// The paper's abstract remarks that the spectral bound "is not only
// efficiently computable by power iteration" — this module makes that
// concrete. Deflated power iteration on the spectrally-shifted operator
// B = σI − A (σ ≥ λ_max, from the Gershgorin bound) converges to the
// *smallest* eigenvalues of A one at a time. It needs only matvecs and a
// handful of vectors, so it is the lightest-weight backend; the Lanczos
// solver dominates it in convergence rate (bench/ablation_solver measures
// by how much), but the bound it feeds stays sound either way because
// Rayleigh quotients of any orthonormal set over-estimate partial sums of
// the smallest eigenvalues — the same certification logic as Lanczos.
#pragma once

#include <cstdint>
#include <vector>

#include "graphio/la/csr_matrix.hpp"

namespace graphio::la {

struct PowerOptions {
  std::int64_t max_iterations = 5000;
  /// Convergence: residual ‖Av − θv‖ relative to the Gershgorin bound.
  double rel_tol = 1e-8;
  std::uint64_t seed = 0xD0E57A12ULL;
};

struct PowerResult {
  std::vector<double> values;     ///< ascending (for smallest-mode)
  std::vector<double> residuals;  ///< ‖Av − θv‖ per value
  bool converged = false;
  std::int64_t matvecs = 0;
};

/// Largest eigenvalue of the symmetric matrix A (plain power iteration
/// with Rayleigh-quotient convergence test).
PowerResult largest_eigenvalue(const CsrMatrix& a,
                               const PowerOptions& opts = {});

/// The `want` smallest eigenvalues of A via deflated power iteration on
/// σI − A. Slow on clustered spectra by design — it exists as the
/// baseline the abstract alludes to and as an ablation point.
PowerResult power_smallest_eigenvalues(const CsrMatrix& a, int want,
                                       const PowerOptions& opts = {});

}  // namespace graphio::la
