#include "graphio/la/jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graphio/support/contracts.hpp"

namespace graphio::la {

namespace {

double off_diagonal_norm(const DenseMatrix& a) {
  const std::size_t n = a.rows();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) sum += a(i, j) * a(i, j);
  return std::sqrt(2.0 * sum);
}

double frobenius_norm(const DenseMatrix& a) {
  double sum = 0.0;
  for (const double v : a.data()) sum += v * v;
  return std::sqrt(sum);
}

}  // namespace

JacobiResult jacobi_eigen(DenseMatrix a, const JacobiOptions& opts) {
  const std::size_t n = a.rows();
  GIO_EXPECTS_MSG(a.cols() == n, "matrix must be square");
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      GIO_EXPECTS_MSG(std::fabs(a(i, j) - a(j, i)) <=
                          1e-10 * std::max(1.0, frobenius_norm(a)),
                      "matrix must be symmetric");

  JacobiResult result;
  result.vectors = DenseMatrix::identity(n);
  const double scale = std::max(frobenius_norm(a), 1e-300);

  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    if (off_diagonal_norm(a) <= opts.rel_tol * scale) {
      result.converged = true;
      break;
    }
    ++result.sweeps;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        // Classic two-sided rotation that zeroes a(p,q).
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double sign = theta >= 0.0 ? 1.0 : -1.0;
        const double t =
            sign / (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = result.vectors(k, p);
          const double vkq = result.vectors(k, q);
          result.vectors(k, p) = c * vkp - s * vkq;
          result.vectors(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!result.converged)
    result.converged = off_diagonal_norm(a) <= opts.rel_tol * scale;

  // Extract and sort (values with matching vector columns).
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  std::sort(perm.begin(), perm.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] < diag[y]; });
  result.values.resize(n);
  DenseMatrix sorted(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.values[j] = diag[perm[j]];
    for (std::size_t i = 0; i < n; ++i)
      sorted(i, j) = result.vectors(i, perm[j]);
  }
  result.vectors = std::move(sorted);
  return result;
}

std::vector<double> jacobi_eigenvalues(DenseMatrix a,
                                       const JacobiOptions& opts) {
  return jacobi_eigen(std::move(a), opts).values;
}

}  // namespace graphio::la
