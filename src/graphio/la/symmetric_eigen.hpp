// Dense symmetric eigensolver: Householder tridiagonalization followed by
// implicit-shift QL. O(n³); used directly for graphs below the sparse
// threshold and for the projected matrices inside Lanczos.
#pragma once

#include <vector>

#include "graphio/la/dense_matrix.hpp"

namespace graphio::la {

/// All eigenvalues of the symmetric matrix `a`, ascending.
/// Throws contract_error if `a` is not square or visibly non-symmetric.
std::vector<double> symmetric_eigenvalues(DenseMatrix a);

struct SymmetricEigen {
  std::vector<double> values;  ///< ascending
  DenseMatrix vectors;         ///< column j is the eigenvector of values[j]
};

/// Full eigen decomposition A = V diag(values) Vᵀ.
SymmetricEigen symmetric_eigen(DenseMatrix a);

}  // namespace graphio::la
