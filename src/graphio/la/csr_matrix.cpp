#include "graphio/la/csr_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "graphio/support/contracts.hpp"
#include "graphio/support/parallel.hpp"

namespace graphio::la {

CsrMatrix CsrMatrix::from_triplets(std::int64_t n,
                                   std::vector<Triplet> entries) {
  GIO_EXPECTS(n >= 0);
  for (const Triplet& t : entries)
    GIO_EXPECTS_MSG(t.row >= 0 && t.row < n && t.col >= 0 && t.col < n,
                    "triplet index out of range");

  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.n_ = n;
  m.row_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());

  std::size_t i = 0;
  while (i < entries.size()) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      sum += entries[j].value;
      ++j;
    }
    if (sum != 0.0) {
      m.col_idx_.push_back(entries[i].col);
      m.values_.push_back(sum);
      ++m.row_ptr_[static_cast<std::size_t>(entries[i].row) + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(n); ++r)
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

void CsrMatrix::matvec(std::span<const double> x, std::span<double> y) const {
  GIO_EXPECTS(static_cast<std::int64_t>(x.size()) == n_ &&
              static_cast<std::int64_t>(y.size()) == n_);
  const std::int64_t* rp = row_ptr_.data();
  const std::int64_t* ci = col_idx_.data();
  const double* vv = values_.data();
  const double* xp = x.data();
  double* yp = y.data();
  parallel_for(n_, [&](std::int64_t i) {
    double acc = 0.0;
    for (std::int64_t k = rp[i]; k < rp[i + 1]; ++k) acc += vv[k] * xp[ci[k]];
    yp[i] = acc;
  });
}

double CsrMatrix::symmetry_error() const {
  std::map<std::pair<std::int64_t, std::int64_t>, double> upper;
  for (std::int64_t i = 0; i < n_; ++i) {
    for (std::int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::int64_t j = col_idx_[k];
      if (i == j) continue;
      auto key = std::minmax(i, j);
      auto [it, inserted] = upper.try_emplace({key.first, key.second},
                                             i < j ? values_[k] : -values_[k]);
      if (!inserted) it->second += (i < j ? values_[k] : -values_[k]);
    }
  }
  double worst = 0.0;
  for (const auto& [key, diff] : upper) worst = std::max(worst, std::fabs(diff));
  return worst;
}

double CsrMatrix::gershgorin_upper_bound() const {
  double bound = 0.0;
  for (std::int64_t i = 0; i < n_; ++i) {
    double diag = 0.0;
    double off = 0.0;
    for (std::int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (col_idx_[k] == i)
        diag += values_[k];
      else
        off += std::fabs(values_[k]);
    }
    bound = std::max(bound, diag + off);
  }
  return bound;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(static_cast<std::size_t>(n_), static_cast<std::size_t>(n_));
  for (std::int64_t i = 0; i < n_; ++i)
    for (std::int64_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      d(static_cast<std::size_t>(i), static_cast<std::size_t>(col_idx_[k])) +=
          values_[k];
  return d;
}

}  // namespace graphio::la
