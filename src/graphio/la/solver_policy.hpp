// SolverPolicy — string-addressed registry of eigensolver-selection
// policies, the la-level half of the decompose-and-conquer spectral
// pipeline (core/spectral_pipeline.hpp).
//
// The library has three routes to the smallest h eigenvalues of a sparse
// symmetric PSD matrix: the dense Householder+QL solver (cubic, exact),
// block thick-restart Lanczos (the default sparse path), and block LOBPCG
// (smaller working set, better at tiny h on very sparse operators; see
// bench/ablation_solver). Callers used to hard-wire the choice per call;
// the policy registry centralizes it as a pure function of the problem
// shape (n, nnz, h), so the spectral pipeline can pick a different tier
// per connected component — the whole point of decomposing: a graph too
// big for the dense solver often splits into components that are not.
//
// Registered policies: "auto" (shape-based selection, the default),
// "dense", "lanczos", "lobpcg" (forced tiers).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace graphio::la {

/// The three eigensolver tiers a policy can pick.
enum class SolverKind {
  kDense,    ///< Householder + implicit-shift QL (la/symmetric_eigen.hpp)
  kLanczos,  ///< block thick-restart Lanczos (la/lanczos.hpp)
  kLobpcg,   ///< block LOBPCG (la/lobpcg.hpp)
};

std::string_view to_string(SolverKind kind);

/// Shape of one eigenproblem: the operator's dimension, its nonzero
/// count, and how many of the smallest eigenvalues are wanted.
struct SolverProblem {
  std::int64_t n = 0;
  std::int64_t nnz = 0;
  int h = 0;
  /// True when a predecessor eigenbasis is resident for this component —
  /// the warm tier: a block iteration seeded with the old basis converges
  /// in a handful of iterations, beating the dense solver even below the
  /// cold thresholds.
  bool warm = false;
};

/// Tuning knobs of the "auto" policy. Callers can widen or narrow the
/// tiers without writing a new policy; the forced policies ignore them.
struct SolverThresholds {
  /// At or below this dimension the cubic dense solver is cheap enough to
  /// be the certain choice (matches the evidence in bench/ablation_solver
  /// and the historical SpectralOptions::dense_threshold default).
  std::int64_t dense_n = 2048;
  /// LOBPCG is only considered above this dimension — below it Lanczos's
  /// Chebyshev filter amortizes and usually wins outright.
  std::int64_t lobpcg_min_n = 4096;
  /// ... and only for requests of at most this many eigenvalues: LOBPCG
  /// pays a dense 3b×3b Rayleigh–Ritz per iteration, so its advantage is
  /// confined to small blocks.
  int lobpcg_max_h = 8;
  /// ... and only on very sparse operators (nnz/n at or below this):
  /// denser rows make the per-iteration matvec block dominate.
  double lobpcg_max_density = 3.0;
};

/// A policy's verdict, with a human-readable reason for reports/benches.
struct SolverChoice {
  SolverKind kind = SolverKind::kDense;
  std::string reason;
};

class SolverPolicy {
 public:
  virtual ~SolverPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string_view summary() const = 0;

  /// Picks a solver tier for one problem. Pure: equal inputs yield equal
  /// choices, so cached spectra stay valid under replay.
  [[nodiscard]] virtual SolverChoice choose(
      const SolverProblem& problem,
      const SolverThresholds& thresholds) const = 0;
};

/// All built-in policies, "auto" first. Stable addresses for the lifetime
/// of the process.
const std::vector<const SolverPolicy*>& solver_policies();

/// Lookup by name; nullptr when unknown.
const SolverPolicy* find_solver_policy(std::string_view name);

/// Lookup by name; throws contract_error listing the registered names
/// when unknown — the one shared "bad --solver" message of the CLI, the
/// serve job parser, and the pipeline.
const SolverPolicy& require_solver_policy(std::string_view name);

/// The names of solver_policies(), in order.
std::vector<std::string> solver_policy_ids();

}  // namespace graphio::la
