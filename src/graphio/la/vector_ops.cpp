#include "graphio/la/vector_ops.hpp"

#include <cmath>

#include "graphio/support/contracts.hpp"

namespace graphio::la {

double dot(std::span<const double> x, std::span<const double> y) {
  GIO_ASSERT(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  GIO_ASSERT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double nrm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double normalize(std::span<double> x) {
  const double norm = nrm2(x);
  if (norm > 0.0) scal(1.0 / norm, x);
  return norm;
}

void fill_normal(std::span<double> x, Prng& rng) {
  for (double& v : x) v = rng.normal();
}

}  // namespace graphio::la
