#include "graphio/la/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

namespace graphio::la {

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

void DenseMatrix::matvec(std::span<const double> x, std::span<double> y) const {
  GIO_EXPECTS(x.size() == cols_ && y.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = data_.data() + i * cols_;
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += a[j] * x[j];
    y[i] = acc;
  }
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  GIO_EXPECTS(cols_ == other.rows());
  DenseMatrix out(rows_, other.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols(); ++j)
        out(i, j) += aik * other(k, j);
    }
  }
  return out;
}

double DenseMatrix::symmetry_error() const {
  GIO_EXPECTS(rows_ == cols_);
  double worst = 0.0;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j)
      worst = std::max(worst, std::fabs((*this)(i, j) - (*this)(j, i)));
  return worst;
}

double DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  GIO_EXPECTS(rows_ == other.rows() && cols_ == other.cols());
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::fabs(data_[i] - other.data()[i]));
  return worst;
}

}  // namespace graphio::la
