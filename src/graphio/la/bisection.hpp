// Sturm-sequence bisection for symmetric tridiagonal eigenvalues.
//
// The Sturm count ν(x) — the number of eigenvalues of T strictly below x —
// is computable in O(n) per evaluation from the LDLᵀ signs of T − xI.
// Bisection on ν gives any single eigenvalue (or all eigenvalues in a
// window) to machine precision without computing the rest of the
// spectrum. Combined with Householder reduction this yields a *windowed*
// dense backend: exactly the h smallest Laplacian eigenvalues the I/O
// bound consumes, independently of the QL path (the two are
// cross-validated in the test suite).
#pragma once

#include <cstdint>
#include <vector>

#include "graphio/la/tridiagonal.hpp"

namespace graphio::la {

/// ν(x): how many eigenvalues of T are < x. O(n) per call.
std::int64_t sturm_count_below(const SymTridiag& t, double x);

/// The k-th smallest eigenvalue (k is 0-based) via bisection to within
/// `tol` of the true value. Requires 0 ≤ k < n.
double bisection_eigenvalue(const SymTridiag& t, std::int64_t k,
                            double tol = 1e-13);

/// The `count` smallest eigenvalues, ascending (each to within `tol`).
std::vector<double> bisection_smallest(const SymTridiag& t,
                                       std::int64_t count,
                                       double tol = 1e-13);

/// All eigenvalues in the half-open window [lo, hi), ascending.
std::vector<double> bisection_in_window(const SymTridiag& t, double lo,
                                        double hi, double tol = 1e-13);

}  // namespace graphio::la
