#include "graphio/la/symmetric_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graphio/la/householder.hpp"
#include "graphio/la/tridiagonal.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::la {

namespace {

void check_symmetric(const DenseMatrix& a) {
  GIO_EXPECTS_MSG(a.rows() == a.cols(), "matrix must be square");
  double scale = 0.0;
  for (double v : a.data()) scale = std::max(scale, std::fabs(v));
  GIO_EXPECTS_MSG(a.symmetry_error() <= 1e-10 * std::max(scale, 1.0),
                  "matrix must be symmetric");
}

}  // namespace

std::vector<double> symmetric_eigenvalues(DenseMatrix a) {
  check_symmetric(a);
  SymTridiag t = householder_tridiagonalize(a, /*accumulate=*/false);
  return tridiagonal_eigenvalues(std::move(t));
}

SymmetricEigen symmetric_eigen(DenseMatrix a) {
  check_symmetric(a);
  const std::size_t n = a.rows();
  SymTridiag t = householder_tridiagonalize(a, /*accumulate=*/true);
  // `a` now holds the accumulated Q; QL rotates it into the eigenvectors.
  ql_implicit_shift(t.diag, t.off, &a);

  // Sort pairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return t.diag[x] < t.diag[y];
  });

  SymmetricEigen out;
  out.values.resize(n);
  out.vectors = DenseMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = t.diag[order[j]];
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = a(i, order[j]);
  }
  return out;
}

}  // namespace graphio::la
