// Householder reduction of a dense symmetric matrix to tridiagonal form
// (EISPACK tred2 lineage), with optional accumulation of the orthogonal
// transform for eigenvector computation.
#pragma once

#include "graphio/la/dense_matrix.hpp"
#include "graphio/la/tridiagonal.hpp"

namespace graphio::la {

/// Reduces the symmetric matrix `a` to tridiagonal T = Qᵀ A Q in place.
///
/// Only the lower triangle of `a` is read. When `accumulate` is true, on
/// return `a` holds Q (so eigenvectors of A are Q · eigenvectors of T);
/// otherwise the contents of `a` are unspecified scratch.
SymTridiag householder_tridiagonalize(DenseMatrix& a, bool accumulate);

}  // namespace graphio::la
