#include "graphio/la/bisection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graphio/support/contracts.hpp"

namespace graphio::la {

namespace {

/// Gershgorin interval [lo, hi] containing every eigenvalue of T.
std::pair<double, double> gershgorin_interval(const SymTridiag& t) {
  const std::size_t n = t.diag.size();
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (std::size_t i = 0; i < n; ++i) {
    double radius = 0.0;
    if (i > 0) radius += std::fabs(t.off[i - 1]);
    if (i + 1 < n) radius += std::fabs(t.off[i]);
    lo = std::min(lo, t.diag[i] - radius);
    hi = std::max(hi, t.diag[i] + radius);
  }
  return {lo, hi};
}

}  // namespace

std::int64_t sturm_count_below(const SymTridiag& t, double x) {
  const std::size_t n = t.diag.size();
  GIO_EXPECTS_MSG(t.off.size() + 1 >= n, "off-diagonal too short");
  // LDLᵀ of T − xI: d_i = (a_i − x) − b_{i-1}² / d_{i-1}; the number of
  // negative pivots equals ν(x) (Sylvester's law of inertia).
  std::int64_t count = 0;
  double d = 1.0;
  const double tiny = std::numeric_limits<double>::min();
  for (std::size_t i = 0; i < n; ++i) {
    const double b = i > 0 ? t.off[i - 1] : 0.0;
    double denom = d;
    if (std::fabs(denom) < tiny) denom = denom < 0.0 ? -tiny : tiny;
    d = (t.diag[i] - x) - b * b / denom;
    if (d < 0.0) ++count;
  }
  return count;
}

double bisection_eigenvalue(const SymTridiag& t, std::int64_t k,
                            double tol) {
  const auto n = static_cast<std::int64_t>(t.diag.size());
  GIO_EXPECTS(k >= 0 && k < n);
  GIO_EXPECTS(tol > 0.0);
  auto [lo, hi] = gershgorin_interval(t);
  // Invariant: ν(lo) ≤ k < ν(hi).
  lo -= tol;
  hi += tol;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;  // double resolution exhausted
    if (sturm_count_below(t, mid) <= k)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

std::vector<double> bisection_smallest(const SymTridiag& t,
                                       std::int64_t count, double tol) {
  const auto n = static_cast<std::int64_t>(t.diag.size());
  count = std::clamp<std::int64_t>(count, 0, n);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::int64_t k = 0; k < count; ++k)
    out.push_back(bisection_eigenvalue(t, k, tol));
  // Bisection can leave neighbours a hair out of order at tol resolution.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> bisection_in_window(const SymTridiag& t, double lo,
                                        double hi, double tol) {
  GIO_EXPECTS(lo <= hi);
  const std::int64_t first = sturm_count_below(t, lo);
  const std::int64_t last = sturm_count_below(t, hi);  // count < hi
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(last - first));
  for (std::int64_t k = first; k < last; ++k)
    out.push_back(bisection_eigenvalue(t, k, tol));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace graphio::la
