// Block thick-restart Lanczos for the smallest eigenvalues of a large
// sparse symmetric PSD matrix (the graph Laplacians of Section 4).
//
// Algorithm: maintain an orthonormal basis V (all columns orthogonal to
// every locked eigenvector), its image AV, and the exact projected matrix
// T = VᵀAV. Expand V block by block with two-pass full
// reorthogonalization; at the basis cap, solve the dense Rayleigh–Ritz
// problem on T, lock the ascending prefix of Ritz pairs whose *explicit*
// residual ‖Az − θz‖ passes the tolerance, then thick-restart: compact V
// to the remaining smallest Ritz vectors (T becomes diag(θ) exactly) and
// continue expanding from the saved residual block plus a fresh random
// block (the random injection re-discovers eigenvalue copies beyond the
// block size — hypercube Laplacians have multiplicities in the hundreds).
//
// Design notes (soundness of the I/O bound depends on these):
//
//  * Rayleigh–Ritz values from a subspace *over*-estimate the true smallest
//    eigenvalues (Cauchy interlacing), so a bound computed from unconverged
//    or *skipped* eigenvalues could exceed the true lower bound. We
//    therefore lock a Ritz pair only after an explicit residual check
//    ‖Az − θz‖ ≤ tol with a freshly assembled z and a fresh matvec, and we
//    lock strictly in ascending-prefix order: nothing above an unconverged
//    Ritz value is ever locked.
//
//  * T = VᵀAV is maintained exactly (every entry is a fresh dot product
//    with the stored AV column), so restart compaction and random refills
//    cannot corrupt the projected problem.
#pragma once

#include <cstdint>
#include <vector>

#include "graphio/la/csr_matrix.hpp"

namespace graphio::la {

struct LanczosOptions {
  /// Krylov block width.
  int block_size = 8;
  /// Basis-column cap per restart cycle
  /// (0 = auto: max(want + 4·block, 6·block, 192)).
  int max_basis = 0;
  /// Hard ceiling on stall-driven basis widening. Each stalled cycle
  /// doubles the basis cap (wider Krylov spaces resolve clustered interior
  /// eigenvalues) but Rayleigh–Ritz is cubic in the basis width, so
  /// unbounded doubling would turn a stall into an effective hang.
  int stall_basis_cap = 1024;
  /// Restart-cycle cap before giving up.
  int max_cycles = 120;
  /// Residual tolerance relative to the Gershgorin bound of A.
  double rel_tol = 1e-9;
  /// Degree of the Chebyshev polynomial that amplifies the low end of the
  /// spectrum when generating new Krylov directions (< 2 disables the
  /// filter). Tightly clustered smallest eigenvalues (butterfly and path
  /// Laplacians) converge orders of magnitude faster with the filter; it
  /// never affects correctness because T and the locking certification are
  /// always computed with the unfiltered operator.
  int cheb_degree = 24;
  /// PRNG seed for start blocks and refills.
  std::uint64_t seed = 0x5EEDBA5EULL;
  /// n at or below which the problem is handed to the dense solver.
  int dense_fallback = 320;
  /// Optional warm-start basis: columns of length n seeding the first
  /// cycle's continuation block in place of the random start (surplus or
  /// wrong-length columns are dropped). Warm starts change only the cycle
  /// count — T stays exact and the locking certification is untouched.
  std::vector<std::vector<double>> warm_start;
  /// Retain the locked eigenvectors in LanczosResult::vectors.
  bool return_vectors = false;
};

struct LanczosResult {
  std::vector<double> values;  ///< locked eigenvalues, ascending
  /// Explicit residual ‖Az − θz‖ of each locked pair (same order as
  /// `values`). |θ − λ| ≤ residual for the matched true eigenvalue, so
  /// θ − residual is a *certified lower estimate* — what the I/O bound
  /// consumes when run at loose tolerance.
  std::vector<double> residuals;
  /// Locked eigenvectors, same order as `values` (only when
  /// LanczosOptions::return_vectors; empty otherwise).
  std::vector<std::vector<double>> vectors;
  bool converged = false;  ///< all `want` values locked
  int cycles = 0;          ///< restart cycles used
  std::int64_t matvecs = 0;    ///< sparse matvec count
  int max_basis_used = 0;      ///< widest basis across cycles
};

/// Computes the `want` smallest eigenvalues (with multiplicity) of the
/// symmetric matrix A. `want` is clamped to A.size().
LanczosResult smallest_eigenvalues(const CsrMatrix& a, int want,
                                   const LanczosOptions& opts = {});

}  // namespace graphio::la
