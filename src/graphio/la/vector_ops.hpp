// BLAS-1 style primitives on contiguous double vectors.
//
// These are the inner kernels of the eigensolvers. They are deliberately
// plain loops: at the sizes this library works with (n up to a few hundred
// thousand) the compiler vectorizes them well, and keeping them free of
// dependencies makes the whole library self-contained.
#pragma once

#include <span>

#include "graphio/support/prng.hpp"

namespace graphio::la {

/// xᵀy.
double dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scal(double alpha, std::span<double> x);

/// Euclidean norm ‖x‖₂.
double nrm2(std::span<const double> x);

/// x <- x / ‖x‖₂; returns the norm. Zero vectors are left untouched and
/// return 0.
double normalize(std::span<double> x);

/// Fills x with independent standard normals.
void fill_normal(std::span<double> x, Prng& rng);

}  // namespace graphio::la
