// Cyclic Jacobi eigensolver for dense symmetric matrices.
//
// Slower than Householder+QL but famously accurate (small relative errors
// even for tiny eigenvalues) and completely independent of that code
// path, which makes it the test suite's arbiter whenever the primary
// dense solver is in question. O(n³) per sweep, typically 6–10 sweeps.
#pragma once

#include <vector>

#include "graphio/la/dense_matrix.hpp"

namespace graphio::la {

struct JacobiOptions {
  /// Stop when the off-diagonal Frobenius mass falls below
  /// rel_tol · ‖A‖_F.
  double rel_tol = 1e-14;
  int max_sweeps = 30;
};

struct JacobiResult {
  std::vector<double> values;  ///< ascending
  DenseMatrix vectors;         ///< column j ↔ values[j]
  int sweeps = 0;
  bool converged = false;
};

/// Eigendecomposition of the symmetric matrix `a` by cyclic Jacobi
/// rotations. Throws if `a` is not square/symmetric.
JacobiResult jacobi_eigen(DenseMatrix a, const JacobiOptions& opts = {});

/// Values-only convenience.
std::vector<double> jacobi_eigenvalues(DenseMatrix a,
                                       const JacobiOptions& opts = {});

}  // namespace graphio::la
