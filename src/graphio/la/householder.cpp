#include "graphio/la/householder.hpp"

#include <cmath>

#include "graphio/support/contracts.hpp"

namespace graphio::la {

SymTridiag householder_tridiagonalize(DenseMatrix& a, bool accumulate) {
  GIO_EXPECTS(a.rows() == a.cols());
  const std::size_t n = a.rows();
  std::vector<double> d(n, 0.0);
  std::vector<double> e(n, 0.0);  // e[i] couples rows i-1 and i
  if (n == 0) return {};

  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        const double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          if (accumulate) a(j, i) = a(i, j) / h;
          double gg = 0.0;
          for (std::size_t k = 0; k <= j; ++k) gg += a(j, k) * a(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) gg += a(k, j) * a(i, k);
          e[j] = gg / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          const double gg = e[j] - hh * f;
          e[j] = gg;
          for (std::size_t k = 0; k <= j; ++k)
            a(j, k) -= f * e[k] + gg * a(i, k);
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }

  if (accumulate) {
    d[0] = 0.0;
    e[0] = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (d[i] != 0.0) {
        for (std::size_t j = 0; j < i; ++j) {
          double g = 0.0;
          for (std::size_t k = 0; k < i; ++k) g += a(i, k) * a(k, j);
          for (std::size_t k = 0; k < i; ++k) a(k, j) -= g * a(k, i);
        }
      }
      d[i] = a(i, i);
      a(i, i) = 1.0;
      for (std::size_t j = 0; j < i; ++j) {
        a(j, i) = 0.0;
        a(i, j) = 0.0;
      }
    }
  } else {
    e[0] = 0.0;
    for (std::size_t i = 0; i < n; ++i) d[i] = a(i, i);
  }

  SymTridiag t;
  t.diag = std::move(d);
  t.off.assign(e.begin() + 1, e.end());
  return t;
}

}  // namespace graphio::la
