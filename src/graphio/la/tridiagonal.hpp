// Symmetric tridiagonal eigensolvers.
//
// The implicit-shift QL iteration (EISPACK tql1/tql2 lineage) is the
// workhorse of both the dense symmetric eigensolver (after Householder
// reduction) and the projected problems inside Lanczos. A closed form for
// tridiagonal Toeplitz matrices is also provided — it is exactly the P''
// path spectrum of the paper's Lemma 11.
#pragma once

#include <vector>

#include "graphio/la/dense_matrix.hpp"

namespace graphio::la {

/// A symmetric tridiagonal matrix: diag has n entries, off has n−1
/// (off[i] couples rows i and i+1).
struct SymTridiag {
  std::vector<double> diag;
  std::vector<double> off;
};

/// Eigenvalues of T in ascending order. O(n²) worst case, no vectors.
std::vector<double> tridiagonal_eigenvalues(SymTridiag t);

struct TridiagEigen {
  std::vector<double> values;  ///< ascending
  DenseMatrix vectors;         ///< column j is the eigenvector of values[j]
};

/// Eigenvalues and orthonormal eigenvectors of T.
TridiagEigen tridiagonal_eigen(SymTridiag t);

/// In-place implicit-shift QL on (d, e); if z is non-null its columns are
/// rotated alongside so that on entry z = Q₀ (accumulated Householder or
/// identity) yields on exit the eigenvectors of the original matrix.
/// e is laid out with e[i] coupling rows i and i+1; e must have size ≥ n−1.
/// The results are NOT sorted. Throws on non-convergence (> 64 sweeps).
void ql_implicit_shift(std::vector<double>& d, std::vector<double>& e,
                       DenseMatrix* z);

/// Closed-form eigenvalues (ascending) of the n×n tridiagonal Toeplitz
/// matrix with constant diagonal `a` and off-diagonal `b`:
/// λ_k = a + 2b·cos(kπ/(n+1)), k = 1..n.
std::vector<double> toeplitz_tridiagonal_eigenvalues(int n, double a, double b);

}  // namespace graphio::la
