#include "graphio/la/power_iteration.hpp"

#include <algorithm>
#include <cmath>

#include "graphio/la/vector_ops.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/prng.hpp"

namespace graphio::la {

namespace {

using Column = std::vector<double>;

/// One deflated power run on the operator op(v) = shift·v − A·v (or plain
/// A·v when shift is 0). Returns the converged Rayleigh quotient w.r.t.
/// A and the unit eigenvector estimate in `v`.
struct RunResult {
  double theta_a = 0.0;  // Rayleigh quotient with respect to A
  double residual = 0.0;
  bool converged = false;
};

RunResult power_run(const CsrMatrix& a, double shift,
                    const std::vector<Column>& deflated, Column& v,
                    const PowerOptions& opts, double tol,
                    std::int64_t& matvecs) {
  const std::size_t n = static_cast<std::size_t>(a.size());
  Column av(n);
  RunResult out;
  for (std::int64_t it = 0; it < opts.max_iterations; ++it) {
    // Deflate: remove converged directions so the next-largest dominates.
    for (const Column& d : deflated) {
      const double c = dot(d, v);
      if (c != 0.0) axpy(-c, d, v);
    }
    if (normalize(v) <= 1e-14) return out;  // collapsed onto deflated set

    a.matvec(v, av);
    ++matvecs;
    out.theta_a = dot(v, av);
    // Residual is shift-invariant: ‖(σI−A)v − (σ−θ)v‖ = ‖Av − θv‖.
    double res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = av[i] - out.theta_a * v[i];
      res += r * r;
    }
    out.residual = std::sqrt(res);
    if (out.residual <= tol) {
      out.converged = true;
      return out;
    }
    // Advance: v ← (σ v − A v) normalized (power step on the shifted op).
    if (shift != 0.0) {
      for (std::size_t i = 0; i < n; ++i) av[i] = shift * v[i] - av[i];
    }
    v = av;
    if (normalize(v) <= 1e-300) return out;  // operator annihilated v
  }
  return out;
}

}  // namespace

PowerResult largest_eigenvalue(const CsrMatrix& a, const PowerOptions& opts) {
  GIO_EXPECTS(a.size() >= 1);
  const double scale = std::max(a.gershgorin_upper_bound(), 1e-300);
  const double tol = opts.rel_tol * scale;
  Prng rng(opts.seed);
  Column v(static_cast<std::size_t>(a.size()));
  fill_normal(v, rng);
  (void)normalize(v);

  PowerResult result;
  const RunResult run =
      power_run(a, 0.0, {}, v, opts, tol, result.matvecs);
  result.values = {run.theta_a};
  result.residuals = {run.residual};
  result.converged = run.converged;
  return result;
}

PowerResult power_smallest_eigenvalues(const CsrMatrix& a, int want,
                                       const PowerOptions& opts) {
  const std::int64_t n = a.size();
  GIO_EXPECTS(want >= 0);
  want = static_cast<int>(std::min<std::int64_t>(want, n));
  PowerResult result;
  if (want == 0) {
    result.converged = true;
    return result;
  }
  const double scale = std::max(a.gershgorin_upper_bound(), 1e-300);
  const double tol = opts.rel_tol * scale;
  // σ strictly above λ_max makes σI − A PSD with its largest eigenvalue
  // at A's smallest; the +0.05 margin keeps the top from degenerating.
  const double shift = 1.05 * scale;

  Prng rng(opts.seed);
  std::vector<Column> deflated;
  result.converged = true;
  for (int k = 0; k < want; ++k) {
    Column v(static_cast<std::size_t>(n));
    fill_normal(v, rng);
    (void)normalize(v);
    const RunResult run =
        power_run(a, shift, deflated, v, opts, tol, result.matvecs);
    result.values.push_back(run.theta_a);
    result.residuals.push_back(run.residual);
    result.converged = result.converged && run.converged;
    deflated.push_back(std::move(v));
  }
  // Deflation delivers eigenvalues in (approximately) ascending order
  // already, but enforce it for downstream prefix sums.
  std::vector<std::size_t> perm(result.values.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](std::size_t x, std::size_t y) {
    return result.values[x] < result.values[y];
  });
  PowerResult sorted;
  sorted.converged = result.converged;
  sorted.matvecs = result.matvecs;
  for (const std::size_t i : perm) {
    sorted.values.push_back(result.values[i]);
    sorted.residuals.push_back(result.residuals[i]);
  }
  return sorted;
}

}  // namespace graphio::la
