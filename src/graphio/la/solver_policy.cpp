#include "graphio/la/solver_policy.hpp"

#include "graphio/support/contracts.hpp"

namespace graphio::la {

std::string_view to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::kDense: return "dense";
    case SolverKind::kLanczos: return "lanczos";
    case SolverKind::kLobpcg: return "lobpcg";
  }
  return "?";
}

namespace {

class AutoPolicy final : public SolverPolicy {
 public:
  std::string_view name() const override { return "auto"; }
  std::string_view summary() const override {
    return "dense below the cubic-affordable threshold, LOBPCG for tiny-h "
           "very-sparse problems, Lanczos otherwise";
  }
  SolverChoice choose(const SolverProblem& problem,
                      const SolverThresholds& t) const override {
    // Warm tier first: a resident predecessor basis makes the block
    // iteration converge in O(1) iterations, so it wins even below the
    // cold dense threshold (the caller decorates the reason with the
    // predecessor fingerprint).
    if (problem.warm)
      return {SolverKind::kLobpcg, "warm"};
    if (problem.n <= t.dense_n)
      return {SolverKind::kDense,
              "n=" + std::to_string(problem.n) +
                  " <= dense_n=" + std::to_string(t.dense_n)};
    const double density =
        problem.n > 0
            ? static_cast<double>(problem.nnz) /
                  static_cast<double>(problem.n)
            : 0.0;
    if (problem.n >= t.lobpcg_min_n && problem.h <= t.lobpcg_max_h &&
        density <= t.lobpcg_max_density)
      return {SolverKind::kLobpcg,
              "h=" + std::to_string(problem.h) + " and nnz/n=" +
                  std::to_string(density) + " fit the LOBPCG niche"};
    return {SolverKind::kLanczos,
            "n=" + std::to_string(problem.n) + " above dense threshold"};
  }
};

class ForcedPolicy final : public SolverPolicy {
 public:
  ForcedPolicy(SolverKind kind, std::string_view summary)
      : kind_(kind), summary_(summary) {}
  std::string_view name() const override { return to_string(kind_); }
  std::string_view summary() const override { return summary_; }
  SolverChoice choose(const SolverProblem&,
                      const SolverThresholds&) const override {
    return {kind_, "forced by policy"};
  }

 private:
  SolverKind kind_;
  std::string_view summary_;
};

}  // namespace

const std::vector<const SolverPolicy*>& solver_policies() {
  static const AutoPolicy auto_policy;
  static const ForcedPolicy dense(
      SolverKind::kDense, "always the dense Householder + QL solver");
  static const ForcedPolicy lanczos(
      SolverKind::kLanczos, "always block thick-restart Lanczos");
  static const ForcedPolicy lobpcg(SolverKind::kLobpcg,
                                   "always block LOBPCG");
  static const std::vector<const SolverPolicy*> all = {&auto_policy, &dense,
                                                       &lanczos, &lobpcg};
  return all;
}

const SolverPolicy* find_solver_policy(std::string_view name) {
  for (const SolverPolicy* policy : solver_policies())
    if (policy->name() == name) return policy;
  return nullptr;
}

const SolverPolicy& require_solver_policy(std::string_view name) {
  const SolverPolicy* policy = find_solver_policy(name);
  if (policy == nullptr) {
    std::string known;
    for (const SolverPolicy* p : solver_policies()) {
      if (!known.empty()) known += "|";
      known += p->name();
    }
    GIO_EXPECTS_MSG(false, "unknown solver policy '" + std::string(name) +
                               "' (known: " + known + ")");
  }
  return *policy;
}

std::vector<std::string> solver_policy_ids() {
  std::vector<std::string> ids;
  ids.reserve(solver_policies().size());
  for (const SolverPolicy* policy : solver_policies())
    ids.emplace_back(policy->name());
  return ids;
}

}  // namespace graphio::la
