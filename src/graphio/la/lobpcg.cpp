#include "graphio/la/lobpcg.hpp"

#include <algorithm>
#include <cmath>

#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/la/vector_ops.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/parallel.hpp"
#include "graphio/support/prng.hpp"

namespace graphio::la {

namespace {

using Block = std::vector<std::vector<double>>;  // columns of length n

/// Two-pass modified Gram–Schmidt of `v` against `basis` (all columns).
void orthogonalize_against(const Block& basis, std::vector<double>& v) {
  for (int pass = 0; pass < 2; ++pass)
    for (const std::vector<double>& b : basis) axpy(-dot(b, v), b, v);
}

/// Orthonormalizes the columns of `block` against `locked` and among
/// themselves; columns that collapse numerically are dropped. Returns the
/// surviving columns.
Block orthonormalize(const Block& locked, Block block) {
  Block kept;
  kept.reserve(block.size());
  for (std::vector<double>& v : block) {
    orthogonalize_against(locked, v);
    orthogonalize_against(kept, v);
    if (normalize(v) > 1e-10) kept.push_back(std::move(v));
  }
  return kept;
}

}  // namespace

LobpcgResult lobpcg_smallest(const CsrMatrix& a, int want,
                             const LobpcgOptions& opts) {
  GIO_EXPECTS(want >= 0);
  GIO_EXPECTS(opts.max_iterations >= 1 && opts.rel_tol > 0.0);
  const std::int64_t n = a.size();
  want = static_cast<int>(std::min<std::int64_t>(want, n));

  LobpcgResult result;
  if (want == 0) {
    result.converged = true;
    return result;
  }
  if (n <= std::max<std::int64_t>(opts.dense_fallback, 2L * want)) {
    if (opts.return_vectors) {
      const SymmetricEigen eig = symmetric_eigen(a.to_dense());
      result.values.assign(eig.values.begin(),
                           eig.values.begin() + want);
      result.vectors.reserve(static_cast<std::size_t>(want));
      for (int j = 0; j < want; ++j) {
        std::vector<double> col(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i)
          col[static_cast<std::size_t>(i)] =
              eig.vectors(static_cast<std::size_t>(i),
                          static_cast<std::size_t>(j));
        result.vectors.push_back(std::move(col));
      }
    } else {
      std::vector<double> all = symmetric_eigenvalues(a.to_dense());
      all.resize(static_cast<std::size_t>(want));
      result.values = std::move(all);
    }
    result.residuals.assign(result.values.size(), 0.0);
    result.converged = true;
    return result;
  }

  const double scale = std::max(a.gershgorin_upper_bound(), 1e-300);
  const double tol = opts.rel_tol * scale;
  const auto block_width = [&](int remaining) {
    const int automatic = opts.block_size > 0
                              ? opts.block_size
                              : remaining + std::max(4, remaining / 4);
    return static_cast<int>(
        std::min<std::int64_t>(std::max(automatic, 1), n));
  };

  Prng rng(opts.seed);
  const auto nn = static_cast<std::size_t>(n);
  auto random_column = [&] {
    std::vector<double> v(nn);
    fill_normal(v, rng);
    return v;
  };
  auto apply = [&](const std::vector<double>& x) {
    std::vector<double> y(nn);
    a.matvec(x, y);
    ++result.matvecs;
    return y;
  };

  Block locked;  // converged eigenvectors, ascending eigenvalue order

  // Current iterates X, orthonormal; conjugate directions P start empty.
  // Warm-start columns (a retained predecessor eigenbasis) replace the
  // random seeds; whatever is missing or collapses under
  // orthonormalization is random-filled, so a degenerate warm block
  // degrades to the cold start rather than failing.
  Block x;
  for (const std::vector<double>& col : opts.warm_start) {
    if (static_cast<int>(x.size()) >= block_width(want)) break;
    if (static_cast<std::int64_t>(col.size()) == n) x.push_back(col);
  }
  while (static_cast<int>(x.size()) < block_width(want))
    x.push_back(random_column());
  x = orthonormalize(locked, std::move(x));
  while (static_cast<int>(x.size()) < block_width(want)) {
    Block extra;
    extra.push_back(random_column());
    Block ortho = orthonormalize(x, std::move(extra));
    if (ortho.empty()) break;
    for (auto& col : ortho) x.push_back(std::move(col));
  }
  Block p;

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const int remaining = want - static_cast<int>(result.values.size());

    // Assemble the trial subspace S = [X | R | P], orthonormalized. The
    // residual block is computed from fresh matvecs on X.
    Block ax;
    ax.reserve(x.size());
    for (const auto& col : x) ax.push_back(apply(col));

    Block r;
    r.reserve(x.size());
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double theta = dot(x[j], ax[j]);
      std::vector<double> res = ax[j];
      axpy(-theta, x[j], res);
      r.push_back(std::move(res));
    }

    Block s = x;  // X columns are already orthonormal vs locked
    for (auto& col : orthonormalize(s, std::move(r)))
      s.push_back(std::move(col));
    {
      Block p_copy = p;
      for (auto& col : orthonormalize(s, std::move(p_copy)))
        s.push_back(std::move(col));
    }
    // Guard against subspace collapse (all residuals dependent): inject a
    // random direction so Rayleigh–Ritz always has room to move.
    if (s.size() == x.size()) {
      Block extra;
      extra.push_back(random_column());
      for (auto& col : orthonormalize(s, std::move(extra)))
        s.push_back(std::move(col));
    }
    // The locked directions must stay out of S even after numerical drift.
    for (auto& col : s) orthogonalize_against(locked, col);

    const auto m = s.size();
    Block as;
    as.reserve(m);
    for (const auto& col : s) as.push_back(apply(col));

    DenseMatrix gram(m, m);
    // Upper triangle in parallel (disjoint rows), then mirrored.
    parallel_for(static_cast<std::int64_t>(m), [&](std::int64_t i) {
      const auto ui = static_cast<std::size_t>(i);
      for (std::size_t j = ui; j < m; ++j)
        gram(ui, j) = 0.5 * (dot(s[ui], as[j]) + dot(s[j], as[ui]));
    });
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = i + 1; j < m; ++j) gram(j, i) = gram(i, j);
    const SymmetricEigen ritz = symmetric_eigen(std::move(gram));

    // New iterates: the `width` smallest Ritz vectors mapped back to R^n;
    // conjugate directions: the same combinations with the X-block rows
    // zeroed (classic LOBPCG three-term recurrence).
    const int width = std::min<int>(block_width(remaining),
                                    static_cast<int>(m));
    Block new_x(static_cast<std::size_t>(width),
                std::vector<double>(nn, 0.0));
    Block new_p(static_cast<std::size_t>(width),
                std::vector<double>(nn, 0.0));
    std::vector<double> theta(static_cast<std::size_t>(width), 0.0);
    for (int j = 0; j < width; ++j) {
      theta[static_cast<std::size_t>(j)] =
          ritz.values[static_cast<std::size_t>(j)];
      for (std::size_t i = 0; i < m; ++i) {
        const double w = ritz.vectors(i, static_cast<std::size_t>(j));
        if (w == 0.0) continue;
        axpy(w, s[i], new_x[static_cast<std::size_t>(j)]);
        if (i >= x.size()) axpy(w, s[i], new_p[static_cast<std::size_t>(j)]);
      }
    }

    // Ascending-prefix locking with explicit residual certification.
    std::size_t lock_count = 0;
    std::vector<double> residual_norms(static_cast<std::size_t>(width), 0.0);
    for (int j = 0; j < width; ++j) {
      auto& candidate = new_x[static_cast<std::size_t>(j)];
      if (normalize(candidate) <= 1e-10) break;
      std::vector<double> res = apply(candidate);
      const double rayleigh = dot(candidate, res);
      axpy(-rayleigh, candidate, res);
      const double rnorm = nrm2(res);
      residual_norms[static_cast<std::size_t>(j)] = rnorm;
      theta[static_cast<std::size_t>(j)] = rayleigh;
      if (rnorm > tol) break;  // nothing above an unconverged pair locks
      ++lock_count;
      if (static_cast<int>(result.values.size()) + static_cast<int>(lock_count)
          >= want)
        break;
    }
    for (std::size_t j = 0; j < lock_count; ++j) {
      result.values.push_back(theta[j]);
      result.residuals.push_back(residual_norms[j]);
      locked.push_back(std::move(new_x[j]));
    }
    if (static_cast<int>(result.values.size()) >= want) {
      result.converged = true;
      break;
    }

    // Surviving (unlocked) iterates continue; re-orthonormalize and refill
    // to the block width against the enlarged locked set.
    Block next_x;
    for (std::size_t j = lock_count; j < new_x.size(); ++j)
      next_x.push_back(std::move(new_x[j]));
    next_x = orthonormalize(locked, std::move(next_x));
    const int target =
        block_width(want - static_cast<int>(result.values.size()));
    while (static_cast<int>(next_x.size()) < target) {
      Block extra;
      extra.push_back(random_column());
      Block ortho = orthonormalize(locked, std::move(extra));
      for (auto& col : ortho) {
        orthogonalize_against(next_x, col);
        if (normalize(col) > 1e-10) next_x.push_back(std::move(col));
      }
      if (ortho.empty()) break;  // space exhausted
    }
    x = std::move(next_x);

    Block next_p;
    for (std::size_t j = lock_count; j < new_p.size(); ++j)
      next_p.push_back(std::move(new_p[j]));
    p = orthonormalize(locked, std::move(next_p));
    if (x.empty()) break;  // nothing left to iterate on
  }

  // Values locked across iterations are ascending by construction within
  // an iteration but later iterations can certify slightly smaller copies
  // of a cluster; sort with paired residuals for a clean contract.
  std::vector<std::size_t> perm(result.values.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](std::size_t lhs, std::size_t rhs) {
    return result.values[lhs] < result.values[rhs];
  });
  std::vector<double> sorted_values(perm.size());
  std::vector<double> sorted_residuals(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    sorted_values[i] = result.values[perm[i]];
    sorted_residuals[i] = result.residuals[perm[i]];
  }
  result.values = std::move(sorted_values);
  result.residuals = std::move(sorted_residuals);
  if (opts.return_vectors) {
    // `locked` is aligned with the pre-sort value order.
    result.vectors.resize(perm.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
      result.vectors[i] = std::move(locked[perm[i]]);
  }
  return result;
}

}  // namespace graphio::la
