// LOBPCG (locally optimal block preconditioned conjugate gradient) for the
// smallest eigenvalues of a large sparse symmetric PSD matrix — the second
// sparse backend next to block Lanczos (la/lanczos.hpp).
//
// Unpreconditioned block LOBPCG with hard locking: each iteration performs
// a Rayleigh–Ritz extraction on the 3-block subspace span[X, R, P]
// (current iterates, residuals, conjugate directions), which is the
// locally optimal update for the block Rayleigh quotient. Converged Ritz
// pairs are locked in *ascending-prefix order only* — same soundness rule
// as Lanczos: Ritz values over-estimate true eigenvalues (Cauchy
// interlacing), so the I/O bound must never consume a value whose smaller
// neighbours are unconverged — and every locked pair carries an explicit
// residual ‖Az − θz‖ so callers can use the certified lower estimate
// θ − ‖r‖.
//
// Compared with Lanczos: no restart machinery and a much smaller working
// set (3 blocks instead of a growing Krylov basis), but one dense 3b×3b
// eigenproblem per iteration; on clustered spectra Lanczos's Chebyshev
// filter usually wins. bench/ablation_solver measures the trade.
#pragma once

#include <cstdint>
#include <vector>

#include "graphio/la/csr_matrix.hpp"

namespace graphio::la {

struct LobpcgOptions {
  /// Block width (0 = auto: want + max(4, want/4), capped by n).
  int block_size = 0;
  /// Iteration cap before giving up.
  int max_iterations = 600;
  /// Residual tolerance relative to the Gershgorin bound of A.
  double rel_tol = 1e-9;
  /// PRNG seed for the start block and replacement directions.
  std::uint64_t seed = 0x10BCD6ULL;
  /// n at or below which the problem is handed to the dense solver.
  int dense_fallback = 320;
  /// Optional warm-start block: columns of length n that seed X in place
  /// of the random start (surplus columns are dropped, missing ones are
  /// random-filled, wrong-length columns are ignored). Warm starts change
  /// only the iteration count — convergence criteria, explicit-residual
  /// locking, and the ascending-prefix rule are untouched.
  std::vector<std::vector<double>> warm_start;
  /// Retain the locked Ritz vectors in LobpcgResult::vectors.
  bool return_vectors = false;
};

struct LobpcgResult {
  std::vector<double> values;     ///< locked eigenvalues, ascending
  std::vector<double> residuals;  ///< explicit ‖Az − θz‖ per locked pair
  /// Locked Ritz vectors, same order as `values` (only when
  /// LobpcgOptions::return_vectors; empty otherwise).
  std::vector<std::vector<double>> vectors;
  bool converged = false;         ///< all `want` values locked
  int iterations = 0;
  std::int64_t matvecs = 0;
};

/// Computes the `want` smallest eigenvalues (with multiplicity) of the
/// symmetric matrix A. `want` is clamped to A.size().
LobpcgResult lobpcg_smallest(const CsrMatrix& a, int want,
                             const LobpcgOptions& opts = {});

}  // namespace graphio::la
