#include "graphio/la/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "graphio/la/symmetric_eigen.hpp"
#include "graphio/la/vector_ops.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/parallel.hpp"
#include "graphio/support/prng.hpp"

namespace graphio::la {

namespace {

using Column = std::vector<double>;
using ColumnSet = std::vector<Column>;

/// w -= Σ_i (v_iᵀ w) v_i, classical Gram-Schmidt, one pass.
/// Coefficients are computed in parallel (independent dots), then the
/// update runs over disjoint row chunks.
void project_out_once(std::span<double> w, const ColumnSet& basis) {
  if (basis.empty()) return;
  const std::int64_t m = static_cast<std::int64_t>(basis.size());
  const std::int64_t n = static_cast<std::int64_t>(w.size());
  std::vector<double> coef(static_cast<std::size_t>(m));
  parallel_for(m, [&](std::int64_t i) {
    coef[static_cast<std::size_t>(i)] =
        dot(basis[static_cast<std::size_t>(i)], w);
  });
  const std::int64_t chunks =
      std::max<std::int64_t>(1, std::min<std::int64_t>(hardware_threads() * 4,
                                                       (n + 1023) / 1024));
  const std::int64_t chunk = (n + chunks - 1) / chunks;
  parallel_for(chunks, [&](std::int64_t c) {
    const std::int64_t lo = c * chunk;
    const std::int64_t hi = std::min(n, lo + chunk);
    if (lo >= hi) return;
    for (std::int64_t i = 0; i < m; ++i) {
      const double ci = coef[static_cast<std::size_t>(i)];
      if (ci == 0.0) continue;
      const double* v = basis[static_cast<std::size_t>(i)].data();
      double* wp = w.data();
      for (std::int64_t r = lo; r < hi; ++r) wp[r] -= ci * v[r];
    }
  });
}

/// Two-pass full reorthogonalization against two basis sets.
void project_out(std::span<double> w, const ColumnSet& basis_a,
                 const ColumnSet& basis_b) {
  for (int pass = 0; pass < 2; ++pass) {
    project_out_once(w, basis_a);
    project_out_once(w, basis_b);
  }
}

/// Fills `col` with a random unit vector orthogonal to both basis sets.
/// Returns false if that repeatedly fails (complement numerically empty).
bool random_orthonormal(Column& col, const ColumnSet& basis_a,
                        const ColumnSet& basis_b, Prng& rng) {
  for (int attempt = 0; attempt < 5; ++attempt) {
    fill_normal(col, rng);
    (void)normalize(col);
    project_out(col, basis_a, basis_b);
    if (normalize(col) > 1e-8) return true;
  }
  return false;
}

/// y += M · w where M's columns are `cols` and w holds one coefficient per
/// column; runs over disjoint row chunks in parallel.
void accumulate_combination(std::span<double> y, const ColumnSet& cols,
                            std::span<const double> w) {
  const std::int64_t m = static_cast<std::int64_t>(cols.size());
  const std::int64_t n = static_cast<std::int64_t>(y.size());
  const std::int64_t chunks =
      std::max<std::int64_t>(1, std::min<std::int64_t>(hardware_threads() * 4,
                                                       (n + 1023) / 1024));
  const std::int64_t chunk = (n + chunks - 1) / chunks;
  parallel_for(chunks, [&](std::int64_t c) {
    const std::int64_t lo = c * chunk;
    const std::int64_t hi = std::min(n, lo + chunk);
    if (lo >= hi) return;
    for (std::int64_t i = 0; i < m; ++i) {
      const double ci = w[static_cast<std::size_t>(i)];
      if (ci == 0.0) continue;
      const double* v = cols[static_cast<std::size_t>(i)].data();
      double* yp = y.data();
      for (std::int64_t r = lo; r < hi; ++r) yp[r] += ci * v[r];
    }
  });
}

/// Chebyshev acceleration for clustered smallest eigenvalues: replaces a
/// direction v with p(A)·v where p is the degree-d Chebyshev polynomial on
/// [cut, ub], which grows like cosh(d·acosh(·)) below `cut`. This boosts
/// exactly the components Krylov expansion struggles with when the low end
/// of the spectrum is tightly clustered (butterfly/path Laplacians). Only
/// the *direction generation* is filtered — T = VᵀAV stays exact in A, so
/// locking certification is untouched.
class ChebyshevFilter {
 public:
  ChebyshevFilter(const CsrMatrix& a, double cut, double upper, int degree)
      : a_(a),
        center_((upper + cut) / 2.0),
        half_((upper - cut) / 2.0),
        degree_(degree) {}

  [[nodiscard]] bool usable() const noexcept { return half_ > 0.0; }

  /// v ← p(A)·v (normalized); returns the matvec count spent.
  std::int64_t apply(Column& v) const {
    const std::size_t n = v.size();
    Column prev = v;             // T_0(x)·v
    Column cur(n);               // T_1(x)·v = ((A − cI)/e)·v
    a_.matvec(prev, cur);
    for (std::size_t i = 0; i < n; ++i)
      cur[i] = (cur[i] - center_ * prev[i]) / half_;
    std::int64_t matvecs = 1;
    Column next(n);
    for (int d = 2; d <= degree_; ++d) {
      a_.matvec(cur, next);
      ++matvecs;
      for (std::size_t i = 0; i < n; ++i)
        next[i] = 2.0 * (next[i] - center_ * cur[i]) / half_ - prev[i];
      std::swap(prev, cur);
      std::swap(cur, next);
      // Values below `cut` grow like cosh(d·acosh(..)); renormalize to
      // keep the recurrence away from overflow.
      if (d % 8 == 0) (void)normalize(cur);
    }
    (void)normalize(cur);
    v = std::move(cur);
    return matvecs;
  }

 private:
  const CsrMatrix& a_;
  double center_;
  double half_;
  int degree_;
};

}  // namespace

LanczosResult smallest_eigenvalues(const CsrMatrix& a, int want,
                                   const LanczosOptions& opts) {
  const std::int64_t n = a.size();
  GIO_EXPECTS_MSG(want >= 0, "want must be non-negative");
  want = static_cast<int>(std::min<std::int64_t>(want, n));

  LanczosResult result;
  if (want == 0) {
    result.converged = true;
    return result;
  }

  const int block =
      std::max(2, std::min<int>(opts.block_size, static_cast<int>(n)));

  // Small problems: the dense solver is both faster and exact.
  if (n <= std::max<std::int64_t>(opts.dense_fallback, 3L * block)) {
    if (opts.return_vectors) {
      const SymmetricEigen eig = symmetric_eigen(a.to_dense());
      result.values.assign(eig.values.begin(),
                           eig.values.begin() + want);
      result.vectors.reserve(static_cast<std::size_t>(want));
      for (int j = 0; j < want; ++j) {
        Column col(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i)
          col[static_cast<std::size_t>(i)] =
              eig.vectors(static_cast<std::size_t>(i),
                          static_cast<std::size_t>(j));
        result.vectors.push_back(std::move(col));
      }
    } else {
      std::vector<double> all = symmetric_eigenvalues(a.to_dense());
      all.resize(static_cast<std::size_t>(want));
      result.values = std::move(all);
    }
    result.residuals.assign(result.values.size(), 0.0);
    result.converged = true;
    return result;
  }

  int max_basis = opts.max_basis > 0
                      ? opts.max_basis
                      : std::max({want + 4 * block, 6 * block, 192});
  max_basis = static_cast<int>(std::min<std::int64_t>(max_basis, n));
  // Ultimate cap for stall-driven widening; also the fixed row stride of
  // the stored T (a changing stride would scramble retained entries).
  const int basis_ceiling = static_cast<int>(std::min<std::int64_t>(
      n, std::max<std::int64_t>(opts.stall_basis_cap, max_basis)));

  const double scale = std::max(a.gershgorin_upper_bound(), 1e-300);
  const double tol = opts.rel_tol * scale;

  Prng rng(opts.seed);
  ColumnSet locked_vecs;
  std::vector<double> locked_vals;
  std::vector<double> locked_res;

  // Basis state, persistent across thick restarts within the run.
  ColumnSet basis;   // orthonormal columns, all ⊥ locked_vecs
  ColumnSet abasis;  // A · basis[i]
  std::vector<double> tmat(static_cast<std::size_t>(basis_ceiling) *
                           static_cast<std::size_t>(basis_ceiling));
  auto t_at = [&](std::size_t i, std::size_t j) -> double& {
    return tmat[i * static_cast<std::size_t>(basis_ceiling) + j];
  };

  // Appends `col` (assumed orthonormal to locked + basis) to the basis,
  // applies A, and extends T exactly.
  auto append_column = [&](Column col) {
    const std::size_t q = basis.size();
    Column ac(static_cast<std::size_t>(n));
    a.matvec(col, ac);
    ++result.matvecs;
    basis.push_back(std::move(col));
    abasis.push_back(std::move(ac));
    for (std::size_t p = 0; p <= q; ++p) {
      const double tv = dot(basis[p], abasis[q]);
      t_at(p, q) = tv;
      t_at(q, p) = tv;
    }
  };

  // Continuation directions for the next expansion (residual block carried
  // over a thick restart); starts empty so the first cycle seeds randomly —
  // unless a warm-start basis is supplied, in which case its columns
  // (mutually orthonormalized; collapsed ones dropped) seed the first
  // cycle and the Krylov space starts next to the predecessor invariant
  // subspace.
  ColumnSet continuation;
  for (const std::vector<double>& wc : opts.warm_start) {
    if (static_cast<std::int64_t>(wc.size()) != n) continue;
    if (static_cast<int>(continuation.size()) >= max_basis) break;
    Column col = wc;
    project_out_once(col, continuation);
    if (normalize(col) > 1e-8) continuation.push_back(std::move(col));
  }

  // Chebyshev window top, learned from the first Rayleigh–Ritz solve
  // (0 = no filter yet).
  double filter_cut = 0.0;
  auto make_filter = [&]() {
    const double cut = std::min(filter_cut, 0.5 * scale);
    return ChebyshevFilter(a, cut, scale, opts.cheb_degree);
  };
  const bool filtering_enabled = opts.cheb_degree >= 2;

  int stall_cycles = 0;

  while (static_cast<int>(locked_vals.size()) < want &&
         result.cycles < opts.max_cycles) {
    ++result.cycles;
    const int remaining = want - static_cast<int>(locked_vals.size());
    const std::int64_t free_dim =
        n - static_cast<std::int64_t>(locked_vecs.size());
    const int cycle_cap =
        static_cast<int>(std::min<std::int64_t>(max_basis, free_dim));

    // --- seed block: restart continuation + fresh random directions ------
    const bool filtered = filtering_enabled && filter_cut > 0.0 &&
                          filter_cut < 0.5 * scale;
    ColumnSet seed = std::move(continuation);
    continuation.clear();
    for (int c = 0; c < block; ++c) {
      Column col(static_cast<std::size_t>(n));
      if (!random_orthonormal(col, locked_vecs, basis, rng)) break;
      if (filtered) {
        result.matvecs += make_filter().apply(col);
        project_out(col, locked_vecs, basis);
        if (normalize(col) <= 1e-8) continue;
      }
      // Must also be orthogonal to the seed columns not yet appended.
      project_out_once(col, seed);
      if (normalize(col) > 1e-8) seed.push_back(std::move(col));
    }
    if (basis.empty() && seed.empty()) break;  // complement exhausted

    // --- expand block by block up to the basis cap ------------------------
    std::vector<std::size_t> last_block;
    while (!seed.empty() && static_cast<int>(basis.size()) < cycle_cap) {
      last_block.clear();
      for (Column& col : seed) {
        if (static_cast<int>(basis.size()) >= cycle_cap) break;
        // Guard orthogonality once more (cheap, keeps T trustworthy).
        project_out_once(col, basis);
        project_out_once(col, locked_vecs);
        if (normalize(col) <= 1e-10) continue;
        last_block.push_back(basis.size());
        append_column(std::move(col));
      }
      seed.clear();
      if (static_cast<int>(basis.size()) >= cycle_cap) break;
      // Next block: residuals of the freshly applied columns, optionally
      // pushed through the Chebyshev low-end amplifier.
      for (std::size_t q : last_block) {
        Column w = abasis[q];
        if (filtered) result.matvecs += make_filter().apply(w);
        project_out(w, locked_vecs, basis);
        project_out_once(w, seed);
        if (normalize(w) <= 1e-10) {
          if (!random_orthonormal(w, locked_vecs, basis, rng)) continue;
          project_out_once(w, seed);
          if (normalize(w) <= 1e-10) continue;
        }
        seed.push_back(std::move(w));
      }
    }
    // `seed` now holds the residual block that did not fit: the thick-
    // restart continuation directions.
    continuation = std::move(seed);

    const std::size_t s = basis.size();
    result.max_basis_used =
        std::max(result.max_basis_used, static_cast<int>(s));
    if (s == 0) break;

    // --- Rayleigh–Ritz over the basis -------------------------------------
    DenseMatrix tm(s, s);
    for (std::size_t i = 0; i < s; ++i)
      for (std::size_t j = 0; j < s; ++j) tm(i, j) = t_at(i, j);
    SymmetricEigen ritz = symmetric_eigen(std::move(tm));

    // Learn the Chebyshev window: amplify everything below the top of the
    // wanted band (with slack so clustered tails are not clipped).
    {
      const std::size_t win = std::min<std::size_t>(
          s - 1, static_cast<std::size_t>(remaining + 2 * block));
      filter_cut = std::max(ritz.values[win] * 1.1, 1e-10 * scale);
    }

    // --- ascending-prefix locking with explicit certification -------------
    int locked_this_cycle = 0;
    std::size_t first_unlocked = 0;  // index into ritz of first kept pair
    for (std::size_t i = 0; i < s && locked_this_cycle < remaining; ++i) {
      // Assemble z = V y with a fresh combination.
      Column z(static_cast<std::size_t>(n), 0.0);
      std::vector<double> y(s);
      for (std::size_t r = 0; r < s; ++r)
        y[r] = ritz.vectors(r, i);
      accumulate_combination(z, basis, y);
      project_out_once(z, locked_vecs);  // keep locked set orthonormal
      if (normalize(z) <= 0.5) break;    // candidate collapsed onto locked
      Column az(static_cast<std::size_t>(n));
      a.matvec(z, az);
      ++result.matvecs;
      const double theta = dot(z, az);
      axpy(-theta, z, az);
      const double res = nrm2(az);
      if (res > 4.0 * tol) break;  // prefix rule: stop at first failure

      locked_vals.push_back(theta);
      locked_res.push_back(res);
      locked_vecs.push_back(std::move(z));
      ++locked_this_cycle;
      first_unlocked = i + 1;
    }

    if (static_cast<int>(locked_vals.size()) >= want) break;

    // --- thick restart: compact the basis to the smallest kept pairs ------
    const int keep_target = std::min<int>(
        {remaining + 2 * block, static_cast<int>(s - first_unlocked),
         std::max(1, cycle_cap - 2 * block)});
    const std::size_t keep =
        static_cast<std::size_t>(std::max(keep_target, 0));
    ColumnSet new_basis;
    ColumnSet new_abasis;
    std::vector<double> kept_values;
    new_basis.reserve(keep);
    new_abasis.reserve(keep);
    for (std::size_t idx = 0; idx < keep; ++idx) {
      const std::size_t i = first_unlocked + idx;
      if (i >= s) break;
      std::vector<double> y(s);
      for (std::size_t r = 0; r < s; ++r) y[r] = ritz.vectors(r, i);
      Column z(static_cast<std::size_t>(n), 0.0);
      accumulate_combination(z, basis, y);
      Column az(static_cast<std::size_t>(n), 0.0);
      accumulate_combination(az, abasis, y);
      // Clean up drift against the locked set; the matching correction to
      // az keeps T's diagonal faithful to machine precision.
      project_out_once(z, locked_vecs);
      const double norm = normalize(z);
      if (norm <= 1e-8) continue;
      scal(1.0 / norm, az);
      new_basis.push_back(std::move(z));
      new_abasis.push_back(std::move(az));
      kept_values.push_back(ritz.values[i]);
    }
    basis = std::move(new_basis);
    abasis = std::move(new_abasis);
    std::fill(tmat.begin(), tmat.end(), 0.0);
    for (std::size_t i = 0; i < basis.size(); ++i)
      t_at(i, i) = kept_values[i];
    // Re-orthogonalize the continuation block against the compacted basis.
    ColumnSet cleaned;
    for (Column& c : continuation) {
      project_out(c, locked_vecs, basis);
      project_out_once(c, cleaned);
      if (normalize(c) > 1e-8) cleaned.push_back(std::move(c));
    }
    continuation = std::move(cleaned);

    if (locked_this_cycle == 0) {
      ++stall_cycles;
      // Wider Krylov spaces resolve slow-converging clustered ends, but the
      // widening must stay bounded (see stall_basis_cap).
      if (stall_cycles >= 2)
        max_basis = std::min(basis_ceiling, max_basis * 2);
      if (stall_cycles >= 8) break;
    } else {
      stall_cycles = 0;
    }
  }

  // Sort (value, residual) pairs together by value.
  std::vector<std::size_t> perm(locked_vals.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](std::size_t x, std::size_t y) {
    return locked_vals[x] < locked_vals[y];
  });
  result.values.reserve(perm.size());
  result.residuals.reserve(perm.size());
  for (std::size_t i = 0;
       i < perm.size() && static_cast<int>(i) < want; ++i) {
    result.values.push_back(locked_vals[perm[i]]);
    result.residuals.push_back(locked_res[perm[i]]);
    if (opts.return_vectors)
      result.vectors.push_back(std::move(locked_vecs[perm[i]]));
  }
  result.converged = static_cast<int>(result.values.size()) == want;
  return result;
}

}  // namespace graphio::la
