// Compressed sparse row matrix.
//
// Graph Laplacians are assembled in CSR form; the Lanczos eigensolver only
// needs y = A·x, which is parallelized over rows (disjoint writes).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graphio/la/dense_matrix.hpp"

namespace graphio::la {

/// One (row, col, value) entry used during assembly.
struct Triplet {
  std::int64_t row;
  std::int64_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds an n×n matrix from triplets; duplicate (row, col) entries are
  /// summed (the natural semantics for Laplacian assembly with multi-edges).
  static CsrMatrix from_triplets(std::int64_t n, std::vector<Triplet> entries);

  [[nodiscard]] std::int64_t size() const noexcept { return n_; }
  [[nodiscard]] std::int64_t nonzeros() const noexcept {
    return static_cast<std::int64_t>(values_.size());
  }

  /// y = A x (parallel over rows when OpenMP is enabled).
  void matvec(std::span<const double> x, std::span<double> y) const;

  /// max |A_ij − A_ji| over stored entries (tests; O(nnz log nnz)).
  [[nodiscard]] double symmetry_error() const;

  /// Gershgorin upper bound on the largest eigenvalue:
  /// max_i (A_ii + Σ_{j≠i} |A_ij|). For Laplacians this is ≤ 2·max degree.
  [[nodiscard]] double gershgorin_upper_bound() const;

  /// Dense copy (tests and small-n fallbacks).
  [[nodiscard]] DenseMatrix to_dense() const;

  [[nodiscard]] std::span<const std::int64_t> row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] std::span<const std::int64_t> col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }

 private:
  std::int64_t n_ = 0;
  std::vector<std::int64_t> row_ptr_;
  std::vector<std::int64_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace graphio::la
