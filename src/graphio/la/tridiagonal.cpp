#include "graphio/la/tridiagonal.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "graphio/support/contracts.hpp"

namespace graphio::la {

namespace {

double sign_with(double magnitude, double sign_source) {
  return sign_source >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

}  // namespace

void ql_implicit_shift(std::vector<double>& d, std::vector<double>& e,
                       DenseMatrix* z) {
  const std::size_t n = d.size();
  if (n == 0) return;
  GIO_EXPECTS(e.size() + 1 >= n);
  if (z != nullptr) GIO_EXPECTS(z->cols() == n);

  // Shift the off-diagonal so that e[i] couples rows i-1 and i (classic
  // tql2 layout), with e[n-1] used as scratch.
  std::vector<double> sub(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) sub[i - 1] = e[i - 1];
  sub[n - 1] = 0.0;

  constexpr double eps = 2.22044604925031308e-16;
  for (std::size_t l = 0; l < n; ++l) {
    int iterations = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(sub[m]) <= eps * dd) break;
      }
      if (m != l) {
        if (++iterations > 64)
          throw std::runtime_error(
              "ql_implicit_shift: QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * sub[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + sub[l] / (g + sign_with(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow_restart = false;
        for (std::size_t i1 = m; i1-- > l;) {
          const std::size_t i = i1;
          double f = s * sub[i];
          const double b = c * sub[i];
          r = std::hypot(f, g);
          sub[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            sub[m] = 0.0;
            underflow_restart = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (z != nullptr) {
            for (std::size_t k = 0; k < z->rows(); ++k) {
              f = (*z)(k, i + 1);
              (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
              (*z)(k, i) = c * (*z)(k, i) - s * f;
            }
          }
        }
        if (underflow_restart) continue;
        d[l] -= p;
        sub[l] = g;
        sub[m] = 0.0;
      }
    } while (m != l);
  }

  e.assign(sub.begin(), sub.end() - 1);
}

namespace {

/// Sorts (values, optional vectors) ascending by value.
void sort_eigenpairs(std::vector<double>& values, DenseMatrix* vectors) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

  std::vector<double> sorted_values(n);
  for (std::size_t j = 0; j < n; ++j) sorted_values[j] = values[order[j]];
  values = std::move(sorted_values);

  if (vectors != nullptr) {
    DenseMatrix sorted(vectors->rows(), vectors->cols());
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < vectors->rows(); ++i)
        sorted(i, j) = (*vectors)(i, order[j]);
    *vectors = std::move(sorted);
  }
}

}  // namespace

std::vector<double> tridiagonal_eigenvalues(SymTridiag t) {
  GIO_EXPECTS(t.off.size() + 1 == t.diag.size() || t.diag.empty());
  ql_implicit_shift(t.diag, t.off, nullptr);
  std::sort(t.diag.begin(), t.diag.end());
  return std::move(t.diag);
}

TridiagEigen tridiagonal_eigen(SymTridiag t) {
  GIO_EXPECTS(t.off.size() + 1 == t.diag.size() || t.diag.empty());
  const std::size_t n = t.diag.size();
  TridiagEigen out;
  out.vectors = DenseMatrix::identity(n);
  ql_implicit_shift(t.diag, t.off, &out.vectors);
  out.values = std::move(t.diag);
  sort_eigenpairs(out.values, &out.vectors);
  return out;
}

std::vector<double> toeplitz_tridiagonal_eigenvalues(int n, double a,
                                                     double b) {
  GIO_EXPECTS(n >= 0);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(n));
  constexpr double pi = 3.14159265358979323846;
  for (int k = 1; k <= n; ++k)
    values.push_back(a + 2.0 * b * std::cos(k * pi / (n + 1)));
  std::sort(values.begin(), values.end());
  return values;
}

}  // namespace graphio::la
