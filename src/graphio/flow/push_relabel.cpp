#include "graphio/flow/push_relabel.hpp"

#include <algorithm>
#include <queue>

#include "graphio/support/contracts.hpp"

namespace graphio::flow {

PushRelabel::PushRelabel(std::int64_t num_nodes) {
  GIO_EXPECTS(num_nodes >= 0);
  adj_.resize(static_cast<std::size_t>(num_nodes));
}

void PushRelabel::add_edge(std::int64_t u, std::int64_t v,
                           std::int64_t capacity) {
  GIO_EXPECTS(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  GIO_EXPECTS(capacity >= 0);
  auto& fwd = adj_[static_cast<std::size_t>(u)];
  auto& bwd = adj_[static_cast<std::size_t>(v)];
  fwd.push_back({v, capacity, bwd.size()});
  bwd.push_back({u, 0, fwd.size() - 1});
}

void PushRelabel::push(std::int64_t u, Arc& arc) {
  const std::int64_t amount =
      std::min(excess_[static_cast<std::size_t>(u)], arc.cap);
  arc.cap -= amount;
  adj_[static_cast<std::size_t>(arc.to)][arc.rev].cap += amount;
  excess_[static_cast<std::size_t>(u)] -= amount;
  excess_[static_cast<std::size_t>(arc.to)] += amount;
}

void PushRelabel::relabel(std::int64_t u) {
  std::int64_t lowest = 2 * num_nodes();
  for (const Arc& arc : adj_[static_cast<std::size_t>(u)])
    if (arc.cap > 0)
      lowest = std::min(lowest, height_[static_cast<std::size_t>(arc.to)]);
  height_[static_cast<std::size_t>(u)] = lowest + 1;
}

void PushRelabel::global_relabel(std::int64_t s, std::int64_t t) {
  // Exact heights = BFS distance to t in the residual graph; unreachable
  // nodes sit at n + distance-to-s (they can only return flow to s).
  const std::int64_t n = num_nodes();
  std::fill(height_.begin(), height_.end(), 2 * n);
  std::queue<std::int64_t> queue;
  auto scan = [&](std::int64_t root, std::int64_t base) {
    height_[static_cast<std::size_t>(root)] = base;
    queue.push(root);
    while (!queue.empty()) {
      const std::int64_t u = queue.front();
      queue.pop();
      for (const Arc& arc : adj_[static_cast<std::size_t>(u)]) {
        // Residual arc arc.to → u exists iff the reverse arc has capacity.
        const Arc& rev = adj_[static_cast<std::size_t>(arc.to)][arc.rev];
        const auto to = static_cast<std::size_t>(arc.to);
        if (rev.cap > 0 && height_[to] >= 2 * n &&
            arc.to != s && arc.to != t) {
          height_[to] = height_[static_cast<std::size_t>(u)] + 1;
          queue.push(arc.to);
        }
      }
    }
  };
  scan(t, 0);
  height_[static_cast<std::size_t>(s)] = n;
  scan(s, n);

  std::fill(height_count_.begin(), height_count_.end(), 0);
  for (std::int64_t v = 0; v < n; ++v)
    if (height_[static_cast<std::size_t>(v)] < 2 * n)
      ++height_count_[static_cast<std::size_t>(
          height_[static_cast<std::size_t>(v)])];
  std::fill(current_.begin(), current_.end(), 0);
}

void PushRelabel::gap_heuristic(std::int64_t gap) {
  // No node left at height `gap`: every node strictly between gap and n
  // can no longer reach t and is lifted above s's height in one step.
  const std::int64_t n = num_nodes();
  for (std::int64_t v = 0; v < n; ++v) {
    auto& h = height_[static_cast<std::size_t>(v)];
    if (h > gap && h < n) {
      --height_count_[static_cast<std::size_t>(h)];
      h = n + 1;
      if (h < 2 * n) ++height_count_[static_cast<std::size_t>(h)];
      current_[static_cast<std::size_t>(v)] = 0;
    }
  }
}

std::int64_t PushRelabel::max_flow(std::int64_t s, std::int64_t t) {
  GIO_EXPECTS(s >= 0 && s < num_nodes() && t >= 0 && t < num_nodes());
  GIO_EXPECTS_MSG(s != t, "source and sink must differ");
  const std::int64_t n = num_nodes();
  excess_.assign(static_cast<std::size_t>(n), 0);
  height_.assign(static_cast<std::size_t>(n), 0);
  current_.assign(static_cast<std::size_t>(n), 0);
  height_count_.assign(static_cast<std::size_t>(2 * n), 0);
  active_.assign(static_cast<std::size_t>(n), 0);
  fifo_.clear();
  fifo_head_ = 0;

  global_relabel(s, t);

  // Saturate every arc out of s.
  excess_[static_cast<std::size_t>(s)] = 0;
  for (Arc& arc : adj_[static_cast<std::size_t>(s)]) {
    excess_[static_cast<std::size_t>(s)] += arc.cap;
    push(s, arc);
  }
  for (std::int64_t v = 0; v < n; ++v) {
    if (v != s && v != t && excess_[static_cast<std::size_t>(v)] > 0) {
      fifo_.push_back(v);
      active_[static_cast<std::size_t>(v)] = 1;
    }
  }

  // Periodic global relabeling: roughly once per O(n + m) discharge work.
  std::int64_t work = 0;
  std::int64_t arcs = 0;
  for (const auto& list : adj_) arcs += static_cast<std::int64_t>(list.size());
  const std::int64_t work_budget = std::max<std::int64_t>(n + arcs, 64);

  while (fifo_head_ < fifo_.size()) {
    const std::int64_t u = fifo_[fifo_head_++];
    active_[static_cast<std::size_t>(u)] = 0;
    if (fifo_head_ > 1024 && fifo_head_ * 2 > fifo_.size()) {
      fifo_.erase(fifo_.begin(),
                  fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_));
      fifo_head_ = 0;
    }
    if (u == s || u == t) continue;

    // Discharge u.
    while (excess_[static_cast<std::size_t>(u)] > 0) {
      auto& list = adj_[static_cast<std::size_t>(u)];
      if (current_[static_cast<std::size_t>(u)] >= list.size()) {
        const std::int64_t old_height = height_[static_cast<std::size_t>(u)];
        if (old_height < 2 * n)
          --height_count_[static_cast<std::size_t>(old_height)];
        relabel(u);
        work += static_cast<std::int64_t>(list.size());
        const std::int64_t new_height = height_[static_cast<std::size_t>(u)];
        if (new_height < 2 * n)
          ++height_count_[static_cast<std::size_t>(new_height)];
        if (old_height < n &&
            height_count_[static_cast<std::size_t>(old_height)] == 0)
          gap_heuristic(old_height);
        current_[static_cast<std::size_t>(u)] = 0;
        if (height_[static_cast<std::size_t>(u)] >= 2 * n) break;
        continue;
      }
      Arc& arc = list[current_[static_cast<std::size_t>(u)]];
      ++work;
      if (arc.cap > 0 && height_[static_cast<std::size_t>(u)] ==
                             height_[static_cast<std::size_t>(arc.to)] + 1) {
        push(u, arc);
        if (arc.to != s && arc.to != t &&
            !active_[static_cast<std::size_t>(arc.to)]) {
          fifo_.push_back(arc.to);
          active_[static_cast<std::size_t>(arc.to)] = 1;
        }
      } else {
        ++current_[static_cast<std::size_t>(u)];
      }
    }

    if (work >= work_budget) {
      work = 0;
      global_relabel(s, t);
    }
  }
  return excess_[static_cast<std::size_t>(t)];
}

std::vector<char> PushRelabel::min_cut_source_side(std::int64_t s) const {
  GIO_EXPECTS(s >= 0 && s < num_nodes());
  std::vector<char> reachable(static_cast<std::size_t>(num_nodes()), 0);
  std::queue<std::int64_t> queue;
  reachable[static_cast<std::size_t>(s)] = 1;
  queue.push(s);
  while (!queue.empty()) {
    const std::int64_t u = queue.front();
    queue.pop();
    for (const Arc& arc : adj_[static_cast<std::size_t>(u)]) {
      if (arc.cap > 0 && !reachable[static_cast<std::size_t>(arc.to)]) {
        reachable[static_cast<std::size_t>(arc.to)] = 1;
        queue.push(arc.to);
      }
    }
  }
  return reachable;
}

}  // namespace graphio::flow
