#include "graphio/flow/convex_mincut.hpp"

#include <algorithm>
#include <atomic>

#include "graphio/flow/dinic.hpp"
#include "graphio/flow/partitioner.hpp"
#include "graphio/flow/push_relabel.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/parallel.hpp"
#include "graphio/support/timer.hpp"

namespace graphio::flow {

namespace {

/// Marks all strict descendants of v (BFS over children).
void mark_descendants(const Digraph& g, VertexId v, std::vector<char>& mark,
                      std::vector<VertexId>& queue) {
  mark.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  queue.clear();
  for (VertexId child : g.children(v)) {
    if (!mark[static_cast<std::size_t>(child)]) {
      mark[static_cast<std::size_t>(child)] = 1;
      queue.push_back(child);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (VertexId child : g.children(queue[head])) {
      if (!mark[static_cast<std::size_t>(child)]) {
        mark[static_cast<std::size_t>(child)] = 1;
        queue.push_back(child);
      }
    }
  }
}

template <typename Network>
std::int64_t wavefront_mincut_impl(const Digraph& g, VertexId v,
                                   std::vector<char>& descendant,
                                   std::vector<VertexId>& scratch) {
  if (g.out_degree(v) == 0) return 0;
  mark_descendants(g, v, descendant, scratch);

  const std::int64_t n = g.num_vertices();
  // Node layout: u_in = 2u, u_out = 2u + 1, s = 2n, t = 2n + 1.
  Network net(2 * n + 2);
  const std::int64_t s = 2 * n;
  const std::int64_t t = 2 * n + 1;
  auto in_node = [](VertexId u) { return 2 * u; };
  auto out_node = [](VertexId u) { return 2 * u + 1; };

  for (VertexId u = 0; u < n; ++u) net.add_edge(in_node(u), out_node(u), 1);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId w : g.children(u)) {
      net.add_edge(out_node(u), in_node(w), Network::kInfinity);  // boundary
      net.add_edge(in_node(w), in_node(u), Network::kInfinity);  // closure
    }
  }
  net.add_edge(s, in_node(v), Network::kInfinity);
  for (VertexId w = 0; w < n; ++w)
    if (descendant[static_cast<std::size_t>(w)])
      net.add_edge(in_node(w), t, Network::kInfinity);

  const std::int64_t cut = net.max_flow(s, t);
  GIO_ENSURES(cut < Network::kInfinity);
  return cut;
}

std::int64_t wavefront_mincut_dispatch(const Digraph& g, VertexId v,
                                       FlowEngine engine,
                                       std::vector<char>& descendant,
                                       std::vector<VertexId>& scratch) {
  return engine == FlowEngine::kDinic
             ? wavefront_mincut_impl<Dinic>(g, v, descendant, scratch)
             : wavefront_mincut_impl<PushRelabel>(g, v, descendant, scratch);
}

}  // namespace

std::int64_t wavefront_mincut(const Digraph& g, VertexId v,
                              FlowEngine engine) {
  GIO_EXPECTS(g.contains(v));
  std::vector<char> descendant;
  std::vector<VertexId> scratch;
  return wavefront_mincut_dispatch(g, v, engine, descendant, scratch);
}

ConvexMinCutResult convex_mincut_bound(const Digraph& g, double memory,
                                       const ConvexMinCutOptions& options) {
  GIO_EXPECTS_MSG(memory >= 0.0, "memory size must be non-negative");
  const std::int64_t n = g.num_vertices();
  WallTimer timer;

  std::vector<std::int64_t> cuts(static_cast<std::size_t>(n), 0);
  std::vector<char> processed(static_cast<std::size_t>(n), 0);
  std::atomic<bool> expired{false};

  auto body = [&](std::int64_t v) {
    if (expired.load(std::memory_order_relaxed)) return;
    thread_local std::vector<char> descendant;
    thread_local std::vector<VertexId> scratch;
    cuts[static_cast<std::size_t>(v)] = wavefront_mincut_dispatch(
        g, static_cast<VertexId>(v), options.engine, descendant, scratch);
    processed[static_cast<std::size_t>(v)] = 1;
    if (timer.seconds() > options.time_budget_seconds)
      expired.store(true, std::memory_order_relaxed);
  };
  if (options.parallel) {
    parallel_for_dynamic(n, body);
  } else {
    for (std::int64_t v = 0; v < n && !expired; ++v) body(v);
  }

  ConvexMinCutResult result;
  for (std::int64_t v = 0; v < n; ++v) {
    if (!processed[static_cast<std::size_t>(v)]) continue;
    ++result.vertices_processed;
    const std::int64_t cut = cuts[static_cast<std::size_t>(v)];
    if (result.best_vertex < 0 || cut > result.best_cut) {
      result.best_vertex = static_cast<VertexId>(v);
      result.best_cut = cut;
    }
  }
  // max_v 2·(C(v) − M) is monotone in C(v), so only the largest cut matters.
  result.bound =
      std::max(0.0, 2.0 * (static_cast<double>(result.best_cut) - memory));
  result.completed = !expired.load();
  result.seconds = timer.seconds();
  return result;
}

ConvexMinCutResult partitioned_convex_mincut_bound(
    const Digraph& g, double memory, std::int64_t max_part_size,
    const ConvexMinCutOptions& options) {
  GIO_EXPECTS(max_part_size >= 1);
  WallTimer timer;
  ConvexMinCutResult total;
  for (const auto& part : bfs_partition(g, max_part_size)) {
    const Digraph sub = induced_subgraph(g, part);
    ConvexMinCutOptions sub_options = options;
    sub_options.time_budget_seconds =
        options.time_budget_seconds - timer.seconds();
    const ConvexMinCutResult piece =
        convex_mincut_bound(sub, memory, sub_options);
    total.bound += piece.bound;
    total.vertices_processed += piece.vertices_processed;
    total.completed = total.completed && piece.completed;
    if (!piece.completed) break;
  }
  total.seconds = timer.seconds();
  return total;
}

}  // namespace graphio::flow
