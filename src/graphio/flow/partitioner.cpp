#include "graphio/flow/partitioner.hpp"

#include <unordered_map>

#include "graphio/support/contracts.hpp"

namespace graphio::flow {

std::vector<std::vector<VertexId>> bfs_partition(const Digraph& g,
                                                 std::int64_t max_part_size) {
  GIO_EXPECTS(max_part_size >= 1);
  const std::int64_t n = g.num_vertices();
  std::vector<char> assigned(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<VertexId>> parts;

  std::vector<VertexId> queue;
  for (VertexId seed = 0; seed < n; ++seed) {
    if (assigned[static_cast<std::size_t>(seed)]) continue;
    std::vector<VertexId> part;
    queue.clear();
    queue.push_back(seed);
    assigned[static_cast<std::size_t>(seed)] = 1;
    // BFS over the undirected skeleton; a part stops growing at the cap
    // and remaining frontier vertices seed later parts.
    for (std::size_t head = 0;
         head < queue.size() &&
         static_cast<std::int64_t>(part.size()) < max_part_size;
         ++head) {
      const VertexId v = queue[head];
      part.push_back(v);
      auto visit = [&](VertexId next) {
        if (!assigned[static_cast<std::size_t>(next)] &&
            static_cast<std::int64_t>(queue.size()) <
                max_part_size * 4) {  // bounded frontier
          assigned[static_cast<std::size_t>(next)] = 1;
          queue.push_back(next);
        }
      };
      for (VertexId next : g.children(v)) visit(next);
      for (VertexId next : g.parents(v)) visit(next);
    }
    // Vertices queued but not placed get released for later seeds.
    for (std::size_t head = part.size(); head < queue.size(); ++head)
      assigned[static_cast<std::size_t>(queue[head])] = 0;
    parts.push_back(std::move(part));
  }
  return parts;
}

Digraph induced_subgraph(const Digraph& g,
                         std::span<const VertexId> vertices) {
  std::unordered_map<VertexId, VertexId> remap;
  remap.reserve(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    GIO_EXPECTS(g.contains(vertices[i]));
    const bool fresh =
        remap.emplace(vertices[i], static_cast<VertexId>(i)).second;
    GIO_EXPECTS_MSG(fresh, "induced_subgraph: duplicate vertex");
  }
  Digraph sub(static_cast<std::int64_t>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (VertexId child : g.children(vertices[i])) {
      auto it = remap.find(child);
      if (it != remap.end())
        sub.add_edge(static_cast<VertexId>(i), it->second);
    }
  }
  return sub;
}

}  // namespace graphio::flow
