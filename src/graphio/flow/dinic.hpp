// Dinic's max-flow algorithm (blocking flows on BFS level graphs).
//
// Substrate for the convex min-cut baseline of Elango et al. [13]; the
// networks there have unit vertex capacities, where Dinic runs in
// O(E·sqrt(V)).
#pragma once

#include <cstdint>
#include <vector>

namespace graphio::flow {

class Dinic {
 public:
  /// Effectively-infinite capacity for structural arcs.
  static constexpr std::int64_t kInfinity =
      std::int64_t{1} << 60;

  explicit Dinic(std::int64_t num_nodes);

  /// Adds a directed arc u → v with the given capacity (residual arc has 0).
  void add_edge(std::int64_t u, std::int64_t v, std::int64_t capacity);

  /// Computes the maximum s-t flow. May be called once per instance.
  std::int64_t max_flow(std::int64_t s, std::int64_t t);

  /// After max_flow: the set of nodes reachable from s in the residual
  /// graph (the source side of a minimum cut).
  [[nodiscard]] std::vector<char> min_cut_source_side(std::int64_t s) const;

  [[nodiscard]] std::int64_t num_nodes() const noexcept {
    return static_cast<std::int64_t>(adj_.size());
  }

 private:
  struct Arc {
    std::int64_t to;
    std::int64_t cap;
    std::size_t rev;  // index of the reverse arc in adj_[to]
  };

  bool bfs(std::int64_t s, std::int64_t t);
  std::int64_t blocking_flow(std::int64_t s, std::int64_t t);

  std::vector<std::vector<Arc>> adj_;
  std::vector<std::int32_t> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace graphio::flow
