// The convex min-cut automatic lower bound of Elango et al. [13] — the
// baseline the paper compares against in Section 6.3.
//
// For a vertex v, consider any evaluation order at the moment v has just
// been computed. The set S of computed vertices is down-closed (contains
// all predecessors of its members), contains v, and excludes v's strict
// descendants. Its *wavefront*
//     W(S) = { u ∈ S : ∃ (u, w) ∈ E with w ∉ S }
// is exactly the set of live values: computed and still needed. At most M
// of them fit in fast memory, and each of the other |W(S)| − M values must
// be written to slow memory once and read back once, so
//     J*(G) ≥ max_v max(0, 2·(C(v, G) − M)),   C(v, G) = min_S |W(S)|.
//
// C(v, G) is a minimum s-t cut: split every vertex u into u_in → u_out of
// capacity 1 ("u is in the wavefront"); for every edge (u, w) add
// structural ∞ arcs u_out → w_in (if u ∈ S and w ∉ S, u must pay) and
// w_in → u_in (down-closure); connect s → v_in and every strict descendant
// of v to t. Vertices with no descendants yield C(v) = 0 and are skipped.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graphio/graph/digraph.hpp"

namespace graphio::flow {

/// Max-flow engine used for the wavefront cuts; the two implementations
/// are interchangeable (tests cross-certify them) and differ only in
/// speed per network shape (bench/micro_flow).
enum class FlowEngine { kDinic, kPushRelabel };

/// C(v, G): the minimum wavefront size over down-closed sets containing v
/// and excluding v's strict descendants. Returns 0 when v has none.
std::int64_t wavefront_mincut(const Digraph& g, VertexId v,
                              FlowEngine engine = FlowEngine::kDinic);

struct ConvexMinCutOptions {
  /// Wall-clock cutoff; when exceeded the sweep stops early and the result
  /// is marked incomplete (the partial maximum is still a valid bound).
  double time_budget_seconds = std::numeric_limits<double>::infinity();
  /// Sweep vertices in parallel (OpenMP).
  bool parallel = true;
  FlowEngine engine = FlowEngine::kDinic;
};

struct ConvexMinCutResult {
  double bound = 0.0;               ///< max_v 2·max(0, C(v) − M)
  VertexId best_vertex = -1;        ///< argmax vertex (-1 if none positive)
  std::int64_t best_cut = 0;        ///< C(best_vertex)
  bool completed = true;            ///< false when the time budget expired
  std::int64_t vertices_processed = 0;
  double seconds = 0.0;
};

/// The full baseline bound J* ≥ max_v 2·(C(v, G) − M) over all vertices.
ConvexMinCutResult convex_mincut_bound(const Digraph& g, double memory,
                                       const ConvexMinCutOptions& options = {});

/// The partitioned variant discussed in Section 6.3: split the graph into
/// parts of at most `max_part_size` vertices (the paper used METIS with
/// parts of 2M), run the baseline on each induced sub-graph, and sum
///     J* ≥ Σ_P max_{v∈P} max(0, 2·(C(v, G_P) − M)).
/// The paper observes this yields trivial (zero) bounds on complex graphs;
/// the ablation bench reproduces that observation.
ConvexMinCutResult partitioned_convex_mincut_bound(
    const Digraph& g, double memory, std::int64_t max_part_size,
    const ConvexMinCutOptions& options = {});

}  // namespace graphio::flow
