#include "graphio/flow/dinic.hpp"

#include <algorithm>
#include <queue>

#include "graphio/support/contracts.hpp"

namespace graphio::flow {

Dinic::Dinic(std::int64_t num_nodes) {
  GIO_EXPECTS(num_nodes >= 0);
  adj_.resize(static_cast<std::size_t>(num_nodes));
}

void Dinic::add_edge(std::int64_t u, std::int64_t v, std::int64_t capacity) {
  GIO_EXPECTS(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  GIO_EXPECTS(capacity >= 0);
  adj_[static_cast<std::size_t>(u)].push_back(
      {v, capacity, adj_[static_cast<std::size_t>(v)].size()});
  adj_[static_cast<std::size_t>(v)].push_back(
      {u, 0, adj_[static_cast<std::size_t>(u)].size() - 1});
}

bool Dinic::bfs(std::int64_t s, std::int64_t t) {
  level_.assign(adj_.size(), -1);
  std::queue<std::int64_t> queue;
  level_[static_cast<std::size_t>(s)] = 0;
  queue.push(s);
  while (!queue.empty()) {
    const std::int64_t v = queue.front();
    queue.pop();
    for (const Arc& arc : adj_[static_cast<std::size_t>(v)]) {
      if (arc.cap <= 0 || level_[static_cast<std::size_t>(arc.to)] >= 0)
        continue;
      level_[static_cast<std::size_t>(arc.to)] =
          level_[static_cast<std::size_t>(v)] + 1;
      queue.push(arc.to);
    }
  }
  return level_[static_cast<std::size_t>(t)] >= 0;
}

std::int64_t Dinic::blocking_flow(std::int64_t s, std::int64_t t) {
  // Iterative DFS with the current-arc optimization; recursion would
  // overflow the stack on path-like computation graphs.
  struct Step {
    std::int64_t from;
    std::size_t arc;
  };
  std::int64_t total = 0;
  std::vector<Step> path;
  std::int64_t v = s;
  for (;;) {
    if (v == t) {
      std::int64_t push = kInfinity;
      for (const Step& step : path) {
        const Arc& arc =
            adj_[static_cast<std::size_t>(step.from)][step.arc];
        push = std::min(push, arc.cap);
      }
      for (const Step& step : path) {
        Arc& arc = adj_[static_cast<std::size_t>(step.from)][step.arc];
        arc.cap -= push;
        adj_[static_cast<std::size_t>(arc.to)][arc.rev].cap += push;
      }
      total += push;
      // Retreat to just before the first saturated arc on the path.
      std::size_t cut = 0;
      while (cut < path.size() &&
             adj_[static_cast<std::size_t>(path[cut].from)][path[cut].arc]
                     .cap > 0)
        ++cut;
      GIO_ASSERT(cut < path.size());
      v = path[cut].from;
      path.resize(cut);
      continue;
    }
    auto& arcs = adj_[static_cast<std::size_t>(v)];
    std::size_t& i = iter_[static_cast<std::size_t>(v)];
    bool advanced = false;
    while (i < arcs.size()) {
      const Arc& arc = arcs[i];
      if (arc.cap > 0 && level_[static_cast<std::size_t>(arc.to)] ==
                             level_[static_cast<std::size_t>(v)] + 1) {
        path.push_back({v, i});
        v = arc.to;
        advanced = true;
        break;
      }
      ++i;
    }
    if (advanced) continue;
    // Dead end: prune this node from the level graph and retreat.
    if (path.empty()) break;
    level_[static_cast<std::size_t>(v)] = -1;
    v = path.back().from;
    ++iter_[static_cast<std::size_t>(v)];
    path.pop_back();
  }
  return total;
}

std::int64_t Dinic::max_flow(std::int64_t s, std::int64_t t) {
  GIO_EXPECTS(s >= 0 && s < num_nodes() && t >= 0 && t < num_nodes());
  GIO_EXPECTS_MSG(s != t, "source and sink must differ");
  std::int64_t flow = 0;
  while (bfs(s, t)) {
    iter_.assign(adj_.size(), 0);
    flow += blocking_flow(s, t);
  }
  return flow;
}

std::vector<char> Dinic::min_cut_source_side(std::int64_t s) const {
  std::vector<char> reachable(adj_.size(), 0);
  std::queue<std::int64_t> queue;
  reachable[static_cast<std::size_t>(s)] = 1;
  queue.push(s);
  while (!queue.empty()) {
    const std::int64_t v = queue.front();
    queue.pop();
    for (const Arc& arc : adj_[static_cast<std::size_t>(v)]) {
      if (arc.cap <= 0 || reachable[static_cast<std::size_t>(arc.to)])
        continue;
      reachable[static_cast<std::size_t>(arc.to)] = 1;
      queue.push(arc.to);
    }
  }
  return reachable;
}

}  // namespace graphio::flow
