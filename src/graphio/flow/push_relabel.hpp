// Goldberg–Tarjan push-relabel max-flow (FIFO active queue, gap
// relabeling, global relabel on a work budget).
//
// Second max-flow backend next to Dinic (flow/dinic.hpp). The convex
// min-cut baseline runs thousands of unit-capacity max-flows per graph;
// having two independent implementations lets the test suite
// cross-certify every cut value and the micro benches pick the faster
// engine per network shape. The interface mirrors Dinic's so the two are
// drop-in interchangeable.
#pragma once

#include <cstdint>
#include <vector>

namespace graphio::flow {

class PushRelabel {
 public:
  /// Effectively-infinite capacity for structural arcs.
  static constexpr std::int64_t kInfinity = std::int64_t{1} << 60;

  explicit PushRelabel(std::int64_t num_nodes);

  /// Adds a directed arc u → v with the given capacity (residual arc has 0).
  void add_edge(std::int64_t u, std::int64_t v, std::int64_t capacity);

  /// Computes the maximum s-t flow. May be called once per instance.
  std::int64_t max_flow(std::int64_t s, std::int64_t t);

  /// After max_flow: the set of nodes reachable from s in the residual
  /// graph (the source side of a minimum cut).
  [[nodiscard]] std::vector<char> min_cut_source_side(std::int64_t s) const;

  [[nodiscard]] std::int64_t num_nodes() const noexcept {
    return static_cast<std::int64_t>(adj_.size());
  }

 private:
  struct Arc {
    std::int64_t to;
    std::int64_t cap;
    std::size_t rev;  // index of the reverse arc in adj_[to]
  };

  void push(std::int64_t u, Arc& arc);
  void relabel(std::int64_t u);
  void global_relabel(std::int64_t s, std::int64_t t);
  void gap_heuristic(std::int64_t height);

  std::vector<std::vector<Arc>> adj_;
  std::vector<std::int64_t> excess_;
  std::vector<std::int64_t> height_;
  std::vector<std::size_t> current_;       // current-arc pointers
  std::vector<std::int64_t> height_count_;  // nodes per height (gap)
  std::vector<std::int64_t> fifo_;
  std::vector<char> active_;
  std::size_t fifo_head_ = 0;
};

}  // namespace graphio::flow
