// Simple connectivity-aware graph partitioner.
//
// Stands in for METIS in the partitioned convex min-cut variant: grows
// parts by BFS over the undirected skeleton until the size cap, which is
// enough to reproduce the paper's observation that sub-graph partitioning
// makes the baseline trivial on complex graphs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graphio/graph/digraph.hpp"

namespace graphio::flow {

/// Partitions vertices into connected-ish parts of at most max_part_size.
/// Every vertex appears in exactly one part.
std::vector<std::vector<VertexId>> bfs_partition(const Digraph& g,
                                                 std::int64_t max_part_size);

/// The sub-graph induced by `vertices` (ids are remapped to 0..k-1 in the
/// given order; edges with both endpoints inside are kept, with
/// multiplicity).
Digraph induced_subgraph(const Digraph& g, std::span<const VertexId> vertices);

}  // namespace graphio::flow
