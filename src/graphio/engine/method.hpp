// The BoundMethod interface and registry: every bound/estimate family in
// the library behind one uniform, string-addressable API.
//
// A method receives the full memory sweep at once so it can share work
// across the sweep (the spectral families reuse one eigendecomposition,
// the min-cut baseline reuses one wavefront sweep); graph-level artifacts
// are shared *across* methods through the request's ArtifactCache.
//
// Registered ids:
//   spectral        Theorem 4 lower bound (normalized Laplacian)
//   spectral-plain  Theorem 5 lower bound (plain Laplacian, 1/dmax)
//   parallel        Theorem 6 lower bound for p processors
//   mincut          convex min-cut baseline (Elango et al.)
//   partition-dp    optimal Lemma 1 partition of the natural order
//   analytic        Section 5 closed forms (fft/bhk/er specs only)
//   pebble-exact    exact J* by state-space search (<= 21 vertices)
//   memsim          best simulated schedule (upper bound)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graphio/engine/artifact_cache.hpp"
#include "graphio/engine/graph_spec.hpp"
#include "graphio/engine/request.hpp"

namespace graphio::engine {

/// What a method's value means relative to J*(G).
enum class BoundKind {
  kLower,        ///< value <= J*(G) for any evaluation order
  kUpper,        ///< value >= J*(G) (a realized schedule)
  kExact,        ///< value == J*(G)
  kCertificate,  ///< bounds J(X) of one specific order, not J*(G)
};

std::string_view to_string(BoundKind kind);

/// One evaluated (method, memory) cell of a report.
struct MethodRow {
  std::string method;
  double memory = 0.0;
  std::int64_t processors = 1;
  BoundKind kind = BoundKind::kLower;
  /// False when the method does not apply to this graph/request (value is
  /// then meaningless and `note` says why).
  bool applicable = true;
  double value = 0.0;
  /// Maximizing k (spectral), partition level alpha (analytic), or 0.
  int best_k = 0;
  /// False when an iterative solver stopped early or a sweep was cut off;
  /// the value is still a valid (weaker) bound.
  bool converged = true;
  /// True when the value came from a certified-truncated evaluation (job
  /// deadline or injected fault): sound, but weaker than a full run.
  /// Serialized only when true, so fault-free outputs are byte-identical.
  bool degraded = false;
  double seconds = 0.0;
  /// Free-form detail ("k=12", "C(v)=33", "not a DAG", ...).
  std::string note;
};

/// Everything a method may consult while evaluating one request.
struct MethodContext {
  ArtifactCache& cache;
  const BoundRequest& request;
  /// Family metadata when the request's graph came from (or is named by) a
  /// parseable spec; nullptr otherwise.
  const GraphSpec* spec = nullptr;
};

class BoundMethod {
 public:
  virtual ~BoundMethod() = default;

  [[nodiscard]] virtual std::string_view id() const = 0;
  [[nodiscard]] virtual std::string_view summary() const = 0;
  [[nodiscard]] virtual BoundKind kind() const = 0;

  /// Evaluates the whole sweep; returns one row per entry of `memories`
  /// (rows for inapplicable requests have applicable=false, never throw).
  [[nodiscard]] virtual std::vector<MethodRow> evaluate(
      MethodContext& ctx, std::span<const double> memories) const = 0;
};

/// All built-in methods, in reporting order. Stable addresses for the
/// lifetime of the process.
const std::vector<const BoundMethod*>& methods();

/// Lookup by id; nullptr when unknown.
const BoundMethod* find_method(std::string_view id);

/// Resolves a request's method ids against the registry — the one shared
/// definition of selection semantics (Engine::evaluate and the serve
/// scheduler must agree, or a request could succeed without a ResultStore
/// and fail with one). An empty list or any "all" entry selects every
/// registered method, in registry order; unknown ids throw contract_error.
std::vector<const BoundMethod*> select_methods(const BoundRequest& request);

/// The ids of methods(), in order.
std::vector<std::string> method_ids();

}  // namespace graphio::engine
