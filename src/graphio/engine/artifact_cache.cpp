#include "graphio/engine/artifact_cache.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <utility>

#include "graphio/core/partition_dp.hpp"
#include "graphio/core/spectral_pipeline.hpp"
#include "graphio/engine/fingerprint.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/timer.hpp"
#include "graphio/telemetry/metrics.hpp"
#include "graphio/telemetry/trace.hpp"

namespace graphio::engine {

namespace {

// Process-wide lifetime counters mirroring Stats. Resolved once (registry
// lookup takes a mutex), then every dual-write is a single relaxed atomic
// add. The registry totals are monotone — they survive cache destruction
// and graph reinstalls, which the per-instance Stats do not.
struct CacheMetrics {
  telemetry::Counter& hits;
  telemetry::Counter& misses;
  telemetry::Counter& eigensolves;
  telemetry::Counter& mincut_sweeps;
  telemetry::Counter& topo_computes;
  telemetry::Counter& memsim_runs;
  telemetry::Counter& partition_runs;
  telemetry::Counter& component_hits;
  telemetry::Counter& subgraph_extractions;
  telemetry::Counter& fingerprint_computes;
  telemetry::Gauge& fingerprint_seconds;
  telemetry::Gauge& extract_seconds;
  telemetry::Gauge& solve_seconds;
  telemetry::Gauge& merge_seconds;
};

CacheMetrics& cache_metrics() {
  auto& reg = telemetry::MetricsRegistry::global();
  static CacheMetrics metrics{reg.counter("cache.hits"),
                              reg.counter("cache.misses"),
                              reg.counter("cache.eigensolves"),
                              reg.counter("cache.mincut_sweeps"),
                              reg.counter("cache.topo_computes"),
                              reg.counter("cache.memsim_runs"),
                              reg.counter("cache.partition_runs"),
                              reg.counter("cache.component_hits"),
                              reg.counter("cache.subgraph_extractions"),
                              reg.counter("cache.fingerprint_computes"),
                              reg.gauge("cache.fingerprint_seconds"),
                              reg.gauge("cache.extract_seconds"),
                              reg.gauge("cache.solve_seconds"),
                              reg.gauge("cache.merge_seconds")};
  return metrics;
}

}  // namespace

ArtifactCache::ArtifactCache(Digraph graph,
                             std::shared_ptr<store::ArtifactStore> store,
                             std::optional<ComponentSeed> seed)
    : graph_(std::move(graph)),
      store_(std::move(store)),
      seed_(std::move(seed)) {
  if (store_ == nullptr) store_ = std::make_shared<store::ArtifactStore>();
}

ArtifactCache::ArtifactCache(LazyGraph lazy,
                             std::shared_ptr<store::ArtifactStore> store,
                             ComponentSeed seed)
    : materialized_(false),
      lazy_(std::move(lazy)),
      store_(std::move(store)),
      seed_(std::move(seed)) {
  GIO_EXPECTS_MSG(lazy_->materialize && lazy_->component &&
                      lazy_->max_out_degree && lazy_->max_in_degree,
                  "lazy graph must provide every callback");
  if (store_ == nullptr) store_ = std::make_shared<store::ArtifactStore>();
}

const Digraph& ArtifactCache::graph() {
  if (!materialized_) {
    graph_ = lazy_->materialize();
    GIO_EXPECTS_MSG(graph_.num_vertices() == lazy_->vertices &&
                        graph_.num_edges() == lazy_->edges,
                    "lazy graph materialized to different counts than "
                    "declared");
    materialized_ = true;
  }
  return graph_;
}

std::int64_t ArtifactCache::num_vertices() const noexcept {
  return materialized_ ? graph_.num_vertices() : lazy_->vertices;
}

std::int64_t ArtifactCache::num_edges() const noexcept {
  return materialized_ ? graph_.num_edges() : lazy_->edges;
}

std::int64_t ArtifactCache::max_out_degree() {
  return lazy_.has_value() ? lazy_->max_out_degree()
                           : graph_.max_out_degree();
}

std::int64_t ArtifactCache::max_in_degree() {
  return lazy_.has_value() ? lazy_->max_in_degree()
                           : graph_.max_in_degree();
}

ArtifactCache::Decomposition& ArtifactCache::decomposition() {
  if (decomp_.has_value()) return *decomp_;
  Decomposition d;
  if (seed_.has_value()) {
    // Adopt the seeded decomposition after validating that it partitions
    // the graph — a wrong seed would silently serve wrong spectra, so the
    // O(n) check is worth one pass. Components are renumbered to the
    // deterministic smallest-vertex order of weakly_connected_components;
    // source_index remembers each one's position in the caller's seed so
    // LazyGraph::component can be asked for the right extraction.
    std::vector<int> order(seed_->components.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [this](int a, int b) {
      const auto& ca = seed_->components[static_cast<std::size_t>(a)];
      const auto& cb = seed_->components[static_cast<std::size_t>(b)];
      GIO_EXPECTS_MSG(!ca.vertices.empty() && !cb.vertices.empty(),
                      "component seed entries must not be empty");
      return ca.vertices.front() < cb.vertices.front();
    });
    const std::int64_t n = num_vertices();
    d.wc.count = static_cast<int>(seed_->components.size());
    d.wc.component_of.assign(static_cast<std::size_t>(n), -1);
    d.wc.local_id.assign(static_cast<std::size_t>(n), 0);
    std::int64_t covered = 0;
    std::int64_t edge_total = 0;
    for (int c = 0; c < d.wc.count; ++c) {
      const int src = order[static_cast<std::size_t>(c)];
      ComponentSeed::Component& comp =
          seed_->components[static_cast<std::size_t>(src)];
      GIO_EXPECTS_MSG(!comp.vertices.empty(),
                      "component seed entries must not be empty");
      for (std::size_t i = 0; i < comp.vertices.size(); ++i) {
        const VertexId v = comp.vertices[i];
        GIO_EXPECTS_MSG(v >= 0 && v < n,
                        "component seed names vertex " + std::to_string(v) +
                            " outside the graph");
        GIO_EXPECTS_MSG(i == 0 || comp.vertices[i - 1] < v,
                        "component seed vertex lists must ascend");
        GIO_EXPECTS_MSG(d.wc.component_of[static_cast<std::size_t>(v)] == -1,
                        "component seed assigns vertex " + std::to_string(v) +
                            " twice");
        d.wc.component_of[static_cast<std::size_t>(v)] = c;
        d.wc.local_id[static_cast<std::size_t>(v)] =
            static_cast<VertexId>(i);
      }
      covered += static_cast<std::int64_t>(comp.vertices.size());
      edge_total += comp.edges;
      GIO_EXPECTS_MSG(comp.external_ids.empty() ||
                          comp.external_ids.size() == comp.vertices.size(),
                      "component seed external ids must align with vertices");
      d.wc.vertices.push_back(std::move(comp.vertices));
      d.edges.push_back(comp.edges);
      d.fingerprints.push_back(comp.fingerprint);
      d.known.push_back(true);
      d.source_index.push_back(src);
      d.external_ids.push_back(std::move(comp.external_ids));
      d.predecessors.push_back(comp.predecessor);
      d.has_predecessor.push_back(comp.has_predecessor);
    }
    GIO_EXPECTS_MSG(covered == n,
                    "component seed must cover every vertex of the graph");
    GIO_EXPECTS_MSG(edge_total == num_edges(),
                    "component seed edge counts must sum to the graph's");
    seed_.reset();
  } else {
    d.wc = weakly_connected_components(graph());
    d.edges.reserve(static_cast<std::size_t>(d.wc.count));
    for (int c = 0; c < d.wc.count; ++c)
      d.edges.push_back(d.wc.edges_in(graph_, c));
    d.fingerprints.assign(static_cast<std::size_t>(d.wc.count), 0);
    d.known.assign(static_cast<std::size_t>(d.wc.count), false);
    d.external_ids.resize(static_cast<std::size_t>(d.wc.count));
    d.predecessors.assign(static_cast<std::size_t>(d.wc.count), 0);
    d.has_predecessor.assign(static_cast<std::size_t>(d.wc.count), false);
  }
  decomp_ = std::move(d);
  return *decomp_;
}

std::uint64_t ArtifactCache::component_fingerprint(int c) {
  Decomposition& d = decomposition();
  const auto i = static_cast<std::size_t>(c);
  if (d.known[i]) return d.fingerprints[i];
  // In-place hash of the still-unextracted component; memoized so every
  // later artifact kind (and the spectral plan) pays zero.
  d.fingerprints[i] = subgraph_fingerprint(graph(), d.wc, c);
  d.known[i] = true;
  ++stats_.fingerprint_computes;
  cache_metrics().fingerprint_computes.increment();
  return d.fingerprints[i];
}

Digraph ArtifactCache::component_subgraph(int c) {
  Decomposition& d = decomposition();
  ++stats_.subgraph_extractions;
  cache_metrics().subgraph_extractions.increment();
  if (lazy_.has_value())
    return lazy_->component(d.source_index[static_cast<std::size_t>(c)]);
  return d.wc.subgraph(graph_, c);
}

ComponentPlan ArtifactCache::build_plan(const SpectralOptions& options) {
  ComponentPlan plan;
  if (!options.decompose) {
    // Monolithic: one in-place entry covering the whole graph, content-
    // addressed by the whole-graph fingerprint (its cache entries stay
    // distinct from decomposed ones — solver_options_equal keys the
    // decompose switch).
    PlannedComponent whole;
    whole.vertices = num_vertices();
    whole.edges = num_edges();
    whole.in_place = &graph();
    if (fingerprint_.has_value()) {
      whole.fingerprint = *fingerprint_;
      whole.fingerprinted = true;
    } else {
      whole.fingerprint_fn = [this] {
        fingerprint_ = graph_fingerprint(graph_);
        return *fingerprint_;
      };
    }
    plan.components.push_back(std::move(whole));
    return plan;
  }
  Decomposition& d = decomposition();
  plan.components.reserve(static_cast<std::size_t>(d.wc.count));
  for (int c = 0; c < d.wc.count; ++c) {
    PlannedComponent entry;
    entry.vertices = static_cast<std::int64_t>(
        d.wc.vertices[static_cast<std::size_t>(c)].size());
    entry.edges = d.edges[static_cast<std::size_t>(c)];
    entry.predecessor = d.predecessors[static_cast<std::size_t>(c)];
    entry.has_predecessor = d.has_predecessor[static_cast<std::size_t>(c)];
    entry.external_ids = d.external_ids[static_cast<std::size_t>(c)];
    if (d.known[static_cast<std::size_t>(c)]) {
      entry.fingerprint = d.fingerprints[static_cast<std::size_t>(c)];
      entry.fingerprinted = true;
    } else {
      // In-place hash of the still-unextracted component; memoized so a
      // later kind (or a re-request with new options) pays zero.
      entry.fingerprint_fn = [this, c] {
        Decomposition& dd = *decomp_;
        const auto i = static_cast<std::size_t>(c);
        dd.fingerprints[i] = subgraph_fingerprint(graph(), dd.wc, c);
        dd.known[i] = true;
        return dd.fingerprints[i];
      };
    }
    if (d.wc.count == 1 && materialized_) {
      // A connected graph's single component reproduces the graph
      // verbatim — solve in place, never copy.
      entry.in_place = &graph_;
    } else if (lazy_.has_value()) {
      entry.materialize = [this, c] {
        return lazy_->component(
            decomp_->source_index[static_cast<std::size_t>(c)]);
      };
    } else {
      entry.materialize = [this, c] {
        return decomp_->wc.subgraph(graph_, c);
      };
    }
    plan.components.push_back(std::move(entry));
  }
  return plan;
}

std::uint64_t ArtifactCache::fingerprint() {
  if (fingerprint_.has_value()) {
    ++stats_.hits;
    cache_metrics().hits.increment();
    return *fingerprint_;
  }
  ++stats_.misses;
  cache_metrics().misses.increment();
  fingerprint_ = graph_fingerprint(graph());
  return *fingerprint_;
}

const std::vector<VertexId>& ArtifactCache::topo_order() {
  if (topo_.has_value()) {
    ++stats_.hits;
    cache_metrics().hits.increment();
    return *topo_;
  }
  ++stats_.misses;
  cache_metrics().misses.increment();
  Decomposition& d = decomposition();
  const int count = d.wc.count;
  // Per-component orders in local ids: store hit, trivial, or Kahn run.
  std::vector<std::vector<VertexId>> orders(
      static_cast<std::size_t>(count));
  for (int c = 0; c < count; ++c) {
    const auto i = static_cast<std::size_t>(c);
    const auto n = static_cast<std::int64_t>(d.wc.vertices[i].size());
    if (d.edges[i] == 0) {
      // Edgeless: min-first Kahn is the ascending local numbering —
      // cheaper to regenerate than to fingerprint and store.
      orders[i].resize(static_cast<std::size_t>(n));
      std::iota(orders[i].begin(), orders[i].end(), VertexId{0});
      continue;
    }
    const std::uint64_t fp = component_fingerprint(c);
    if (auto cached = store_->lookup_topo(fp);
        cached.has_value() &&
        static_cast<std::int64_t>(cached->order.size()) == n) {
      orders[i] = std::move(cached->order);
      continue;
    }
    Digraph extracted;
    const Digraph* sub;
    if (count == 1 && materialized_) {
      sub = &graph_;
    } else {
      extracted = component_subgraph(c);
      sub = &extracted;
    }
    telemetry::Span topo_span("topo");
    topo_span.attr("vertices", n).attr("edges", d.edges[i]);
    auto order = topological_order(*sub);
    topo_span.end();
    GIO_EXPECTS_MSG(order.has_value(), "graph is cyclic");
    ++stats_.topo_computes;
    cache_metrics().topo_computes.increment();
    store_->store_topo(fp, {*order});
    orders[i] = std::move(*order);
  }
  // Merge by smallest next global id. Each component's min-first Kahn
  // order is the restriction of the whole-graph order (readiness never
  // crosses components), and ascending-extraction numbering makes
  // local→global monotone within a component, so the globally smallest
  // ready vertex is always some component's next element — the merge
  // replays whole-graph Kahn exactly.
  std::vector<std::size_t> pos(static_cast<std::size_t>(count), 0);
  std::vector<VertexId> merged;
  merged.reserve(static_cast<std::size_t>(num_vertices()));
  using Item = std::pair<VertexId, int>;  // (global id, component)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (int c = 0; c < count; ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (!orders[i].empty())
      heap.push({d.wc.vertices[i][static_cast<std::size_t>(orders[i][0])],
                 c});
  }
  while (!heap.empty()) {
    const auto [global, c] = heap.top();
    heap.pop();
    merged.push_back(global);
    const auto i = static_cast<std::size_t>(c);
    if (++pos[i] < orders[i].size())
      heap.push(
          {d.wc.vertices[i][static_cast<std::size_t>(orders[i][pos[i]])],
           c});
  }
  topo_ = std::move(merged);
  return *topo_;
}

const la::CsrMatrix& ArtifactCache::laplacian(LaplacianKind kind) {
  const auto it = laplacians_.find(kind);
  if (it != laplacians_.end()) {
    ++stats_.hits;
    cache_metrics().hits.increment();
    return it->second;
  }
  ++stats_.misses;
  cache_metrics().misses.increment();
  return laplacians_.emplace(kind, graphio::laplacian(graph(), kind))
      .first->second;
}

const ArtifactCache::SpectrumArtifact& ArtifactCache::spectrum(
    LaplacianKind kind, int count, const SpectralOptions& options) {
  GIO_EXPECTS(count >= 0);
  count = static_cast<int>(std::min<std::int64_t>(count, num_vertices()));
  const auto it = spectra_.find(kind);
  // Hit on `requested`, not values.size(): a non-converged solve returns
  // a shorter prefix, and re-running the identical failing solve would
  // only repeat the most expensive case for the same partial answer.
  if (it != spectra_.end() && it->second.requested >= count &&
      solver_options_equal(spectra_options_.at(kind), options)) {
    ++stats_.hits;
    cache_metrics().hits.increment();
    it->second.touched_serial = ++spectrum_touches_;
    return it->second;
  }
  ++stats_.misses;
  cache_metrics().misses.increment();
  WallTimer timer;

  // Lookup-then-extract: the plan describes every component without its
  // vertex data, the resolver answers clean components straight from the
  // fingerprint-keyed store (zero allocations), and only misses
  // materialize their subgraph and eigensolve. Equal components (within
  // this graph or, via an Engine-shared store, across specs and — with a
  // disk tier — across restarts) eigensolve once; trivial (edgeless)
  // components never touch the store — recomputing zeros is cheaper than
  // fingerprinting them.
  SpectralPipeline pipeline(options);
  pipeline.set_component_resolver(
      [this](std::uint64_t fp, std::int64_t, std::int64_t, LaplacianKind k,
             int h, const SpectralOptions& opts) {
        return store_->lookup_spectrum(fp, k, h, opts);
      },
      [this](std::uint64_t fp, LaplacianKind k, int requested,
             const SpectralOptions& opts, const ComponentSolve& solve) {
        store_->store_spectrum(fp, k, requested, opts, solve);
      });
  if (options.retain_basis) {
    // The warm-start layer: converged component bases are retained in the
    // store's memory-only eigenbasis tier, and solves of patched
    // successors seed from them (store/artifact_store.hpp).
    pipeline.set_basis_hooks(
        [this](std::uint64_t fp, LaplacianKind k) {
          return store_->lookup_eigenbasis(fp, k);
        },
        [this](std::uint64_t fp, LaplacianKind k, Eigenbasis basis) {
          store_->store_eigenbasis(fp, k, std::move(basis));
        });
  }
  PipelineResult result = pipeline.run_plan(build_plan(options), kind,
                                            count);

  SpectrumArtifact artifact;
  artifact.requested = count;
  artifact.values = result.values;
  artifact.converged = result.converged;
  artifact.degraded = result.degraded;
  artifact.components = result.components;
  artifact.eigensolves = result.eigensolves;
  artifact.component_hits = result.component_cache_hits;
  artifact.subgraph_extractions = result.subgraph_extractions;
  artifact.fingerprint_computes = result.fingerprint_computes;
  artifact.warm_hits = result.warm_hits;
  artifact.warm_iterations_saved = result.warm_iterations_saved;
  SpectrumRun run;
  run.kind = kind;
  run.requested = count;
  run.merged_values = static_cast<std::int64_t>(result.values.size());
  run.per_component = result.per_component;
  spectrum_runs_.push_back(std::move(run));
  artifact.per_component = std::move(result.per_component);
  if (options.decompose && decomp_.has_value())
    artifact.component_fingerprints = decomp_->fingerprints;
  artifact.seconds = timer.seconds();
  artifact.computed_serial = artifact.touched_serial = ++spectrum_touches_;
  stats_.eigensolves += result.eigensolves;
  stats_.component_hits += result.component_cache_hits;
  stats_.subgraph_extractions += result.subgraph_extractions;
  stats_.fingerprint_computes += result.fingerprint_computes;
  stats_.warm_hits += result.warm_hits;
  stats_.warm_iterations_saved += result.warm_iterations_saved;
  stats_.fingerprint_seconds += result.phases.fingerprint_seconds;
  stats_.extract_seconds += result.phases.extract_seconds;
  stats_.solve_seconds += result.phases.solve_seconds;
  stats_.merge_seconds += result.phases.merge_seconds;
  CacheMetrics& metrics = cache_metrics();
  metrics.eigensolves.add(result.eigensolves);
  metrics.component_hits.add(result.component_cache_hits);
  metrics.subgraph_extractions.add(result.subgraph_extractions);
  metrics.fingerprint_computes.add(result.fingerprint_computes);
  metrics.fingerprint_seconds.add(result.phases.fingerprint_seconds);
  metrics.extract_seconds.add(result.phases.extract_seconds);
  metrics.solve_seconds.add(result.phases.solve_seconds);
  metrics.merge_seconds.add(result.phases.merge_seconds);
  eigensolves_by_kind_[kind] += result.eigensolves;
  spectra_options_.insert_or_assign(kind, options);
  return spectra_.insert_or_assign(kind, std::move(artifact)).first->second;
}

std::int64_t ArtifactCache::cached_spectrum_values(
    LaplacianKind kind) const noexcept {
  const auto it = spectra_.find(kind);
  return it == spectra_.end()
             ? 0
             : static_cast<std::int64_t>(it->second.values.size());
}

const ArtifactCache::WavefrontArtifact& ArtifactCache::max_wavefront_cut(
    const flow::ConvexMinCutOptions& options) {
  const auto it = max_cuts_.find(options.engine);
  if (it != max_cuts_.end()) {
    ++stats_.hits;
    cache_metrics().hits.increment();
    return it->second;
  }
  ++stats_.misses;
  cache_metrics().misses.increment();
  Decomposition& d = decomposition();
  const int count = d.wc.count;
  WavefrontArtifact artifact;
  artifact.components = count;
  artifact.cuts.resize(static_cast<std::size_t>(count), 0);
  for (int c = 0; c < count; ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (d.edges[i] == 0) continue;  // no descendants anywhere: C(v) = 0
    const std::uint64_t fp = component_fingerprint(c);
    if (auto cached = store_->lookup_mincut(fp, options.engine)) {
      artifact.cuts[i] = cached->best_cut;
      if (cached->best_cut > artifact.best_cut) {
        artifact.best_cut = cached->best_cut;
        artifact.best_vertex =
            cached->best_vertex >= 0
                ? d.wc.vertices[i][static_cast<std::size_t>(
                      cached->best_vertex)]
                : VertexId{-1};
      }
      continue;
    }
    Digraph extracted;
    const Digraph* sub;
    if (count == 1 && materialized_) {
      sub = &graph_;
    } else {
      extracted = component_subgraph(c);
      sub = &extracted;
    }
    ++stats_.mincut_sweeps;
    cache_metrics().mincut_sweeps.increment();
    // Memory 0 keeps every cut relevant; per-M bounds derive from the
    // per-component best cuts.
    telemetry::Span mincut_span("mincut");
    mincut_span.attr("vertices", sub->num_vertices())
        .attr("edges", sub->num_edges());
    const flow::ConvexMinCutResult result =
        flow::convex_mincut_bound(*sub, 0.0, options);
    mincut_span.end();
    artifact.cuts[i] = result.best_cut;
    artifact.completed = artifact.completed && result.completed;
    if (result.completed)
      store_->store_mincut(fp, options.engine,
                           {result.best_cut, result.best_vertex,
                            result.vertices_processed, result.completed});
    if (result.best_cut > artifact.best_cut) {
      artifact.best_cut = result.best_cut;
      artifact.best_vertex =
          result.best_vertex >= 0
              ? d.wc.vertices[i][static_cast<std::size_t>(
                    result.best_vertex)]
              : VertexId{-1};
    }
  }
  return max_cuts_.emplace(options.engine, std::move(artifact))
      .first->second;
}

const ArtifactCache::MemsimArtifact& ArtifactCache::memsim_row(
    std::int64_t memory, int random_orders) {
  const auto key = std::make_pair(memory, random_orders);
  const auto it = memsims_.find(key);
  if (it != memsims_.end()) {
    ++stats_.hits;
    cache_metrics().hits.increment();
    return it->second;
  }
  ++stats_.misses;
  cache_metrics().misses.increment();
  Decomposition& d = decomposition();
  const int count = d.wc.count;
  MemsimArtifact artifact;
  artifact.components = count;
  for (int c = 0; c < count; ++c) {
    const auto i = static_cast<std::size_t>(c);
    // Isolated vertices are sources and sinks at once: all their I/O is
    // trivial and excluded from reads/writes by the simulator.
    if (d.edges[i] == 0) continue;
    const std::uint64_t fp = component_fingerprint(c);
    if (auto cached = store_->lookup_memsim(fp, memory, random_orders)) {
      artifact.reads += cached->reads;
      artifact.writes += cached->writes;
      continue;
    }
    Digraph extracted;
    const Digraph* sub;
    if (count == 1 && materialized_) {
      sub = &graph_;
    } else {
      extracted = component_subgraph(c);
      sub = &extracted;
    }
    ++stats_.memsim_runs;
    cache_metrics().memsim_runs.increment();
    telemetry::Span memsim_span("memsim");
    memsim_span.attr("vertices", sub->num_vertices())
        .attr("memory", memory)
        .attr("random_orders", random_orders);
    const sim::SimResult result =
        sim::best_schedule_io(*sub, memory, random_orders);
    memsim_span.end();
    store_->store_memsim(fp, memory, random_orders,
                         {result.reads, result.writes});
    artifact.reads += result.reads;
    artifact.writes += result.writes;
  }
  return memsims_.emplace(key, std::move(artifact)).first->second;
}

const ArtifactCache::PartitionArtifact& ArtifactCache::partition_row(
    double memory) {
  const auto it = partitions_.find(memory);
  if (it != partitions_.end()) {
    ++stats_.hits;
    cache_metrics().hits.increment();
    return it->second;
  }
  ++stats_.misses;
  cache_metrics().misses.increment();
  Decomposition& d = decomposition();
  const int count = d.wc.count;
  PartitionArtifact artifact;
  artifact.components = count;
  double total = 0.0;
  std::int64_t segments = 0;
  int nontrivial = 0;
  for (int c = 0; c < count; ++c) {
    const auto i = static_cast<std::size_t>(c);
    // Edgeless: the component's own optimum is one empty segment (−2M),
    // exactly cancelled by the seam refund of counting it — skip both.
    if (d.edges[i] == 0) continue;
    ++nontrivial;
    const std::uint64_t fp = component_fingerprint(c);
    if (auto cached = store_->lookup_partition(fp, memory)) {
      total += cached->objective;
      segments += cached->segments;
      continue;
    }
    Digraph extracted;
    const Digraph* sub;
    if (count == 1 && materialized_) {
      sub = &graph_;
    } else {
      extracted = component_subgraph(c);
      sub = &extracted;
    }
    const auto n = static_cast<std::int64_t>(d.wc.vertices[i].size());
    // The DP walks the component's own natural order — the restriction
    // of the merged whole-graph Kahn order, already store-cached by the
    // topo artifact.
    std::vector<VertexId> order;
    if (auto cached = store_->lookup_topo(fp);
        cached.has_value() &&
        static_cast<std::int64_t>(cached->order.size()) == n) {
      order = std::move(cached->order);
    } else {
      telemetry::Span topo_span("topo");
      topo_span.attr("vertices", n).attr("edges", d.edges[i]);
      auto computed = topological_order(*sub);
      topo_span.end();
      GIO_EXPECTS_MSG(computed.has_value(), "graph is cyclic");
      ++stats_.topo_computes;
      cache_metrics().topo_computes.increment();
      store_->store_topo(fp, {*computed});
      order = std::move(*computed);
    }
    ++stats_.partition_runs;
    cache_metrics().partition_runs.increment();
    telemetry::Span dp_span("partition_dp");
    dp_span.attr("vertices", n).attr("edges", d.edges[i]);
    const OptimalPartitionResult r =
        optimal_lemma1_bound(*sub, order, memory);
    dp_span.end();
    store_->store_partition(fp, memory,
                            {r.objective, r.objective_segments});
    total += r.objective;
    segments += r.objective_segments;
  }
  if (nontrivial > 0) {
    const double objective =
        total + 2.0 * memory * static_cast<double>(nontrivial - 1);
    if (objective > 0.0) {
      artifact.bound = objective;
      artifact.segments = segments - (nontrivial - 1);
    }
  }
  return partitions_.emplace(memory, std::move(artifact)).first->second;
}

std::int64_t ArtifactCache::eigensolves(LaplacianKind kind) const noexcept {
  const auto it = eigensolves_by_kind_.find(kind);
  return it == eigensolves_by_kind_.end() ? 0 : it->second;
}

}  // namespace graphio::engine
