#include "graphio/engine/artifact_cache.hpp"

#include <algorithm>
#include <utility>

#include "graphio/core/spectral_pipeline.hpp"
#include "graphio/engine/fingerprint.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/timer.hpp"

namespace graphio::engine {

ArtifactCache::ArtifactCache(Digraph graph,
                             std::shared_ptr<ComponentSpectrumCache> components)
    : graph_(std::move(graph)), components_(std::move(components)) {
  if (components_ == nullptr)
    components_ = std::make_shared<ComponentSpectrumCache>();
}

std::uint64_t ArtifactCache::fingerprint() {
  if (fingerprint_.has_value()) {
    ++stats_.hits;
    return *fingerprint_;
  }
  ++stats_.misses;
  fingerprint_ = graph_fingerprint(graph_);
  return *fingerprint_;
}

const std::vector<VertexId>& ArtifactCache::topo_order() {
  if (topo_.has_value()) {
    ++stats_.hits;
    return *topo_;
  }
  ++stats_.misses;
  auto order = topological_order(graph_);
  GIO_EXPECTS_MSG(order.has_value(), "graph is cyclic");
  topo_ = std::move(*order);
  return *topo_;
}

const la::CsrMatrix& ArtifactCache::laplacian(LaplacianKind kind) {
  const auto it = laplacians_.find(kind);
  if (it != laplacians_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  return laplacians_.emplace(kind, graphio::laplacian(graph_, kind))
      .first->second;
}

const ArtifactCache::SpectrumArtifact& ArtifactCache::spectrum(
    LaplacianKind kind, int count, const SpectralOptions& options) {
  GIO_EXPECTS(count >= 0);
  count = static_cast<int>(
      std::min<std::int64_t>(count, graph_.num_vertices()));
  const auto it = spectra_.find(kind);
  // Hit on `requested`, not values.size(): a non-converged solve returns
  // a shorter prefix, and re-running the identical failing solve would
  // only repeat the most expensive case for the same partial answer.
  if (it != spectra_.end() && it->second.requested >= count &&
      solver_options_equal(spectra_options_.at(kind), options)) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  WallTimer timer;

  // Per-component pipeline with the fingerprint-keyed cache injected:
  // equal components (within this graph or, via an Engine-shared cache,
  // across specs) eigensolve once per process. Trivial (edgeless)
  // components never touch the cache — recomputing zeros is cheaper than
  // fingerprinting them.
  SpectralPipeline pipeline(options);
  pipeline.set_component_solver(
      [this](const Digraph& component, LaplacianKind k, int h,
             const SpectralOptions& opts) {
        if (component.num_edges() == 0)
          return solve_component_spectrum(component, k, h, opts);
        const std::uint64_t fp = graph_fingerprint(component);
        if (auto cached = components_->lookup(fp, k, h, opts))
          return *std::move(cached);
        ComponentSolve solve = solve_component_spectrum(component, k, h, opts);
        components_->store(fp, k, h, opts, solve);
        return solve;
      });
  const PipelineResult result = pipeline.run(graph_, kind, count);

  SpectrumArtifact artifact;
  artifact.requested = count;
  artifact.values = result.values;
  artifact.converged = result.converged;
  artifact.components = result.components;
  artifact.eigensolves = result.eigensolves;
  artifact.component_hits = result.component_cache_hits;
  artifact.seconds = timer.seconds();
  stats_.eigensolves += result.eigensolves;
  stats_.component_hits += result.component_cache_hits;
  eigensolves_by_kind_[kind] += result.eigensolves;
  spectra_options_.insert_or_assign(kind, options);
  return spectra_.insert_or_assign(kind, std::move(artifact)).first->second;
}

std::int64_t ArtifactCache::cached_spectrum_values(
    LaplacianKind kind) const noexcept {
  const auto it = spectra_.find(kind);
  return it == spectra_.end()
             ? 0
             : static_cast<std::int64_t>(it->second.values.size());
}

const flow::ConvexMinCutResult& ArtifactCache::max_wavefront_cut(
    const flow::ConvexMinCutOptions& options) {
  const auto it = max_cuts_.find(options.engine);
  if (it != max_cuts_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  ++stats_.mincut_sweeps;
  // Memory 0 keeps every cut relevant; per-M bounds derive from best_cut.
  return max_cuts_
      .emplace(options.engine,
               flow::convex_mincut_bound(graph_, 0.0, options))
      .first->second;
}

std::int64_t ArtifactCache::eigensolves(LaplacianKind kind) const noexcept {
  const auto it = eigensolves_by_kind_.find(kind);
  return it == eigensolves_by_kind_.end() ? 0 : it->second;
}

}  // namespace graphio::engine
