#include "graphio/engine/artifact_cache.hpp"

#include <algorithm>
#include <utility>

#include "graphio/engine/fingerprint.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/timer.hpp"

namespace graphio::engine {

ArtifactCache::ArtifactCache(Digraph graph) : graph_(std::move(graph)) {}

std::uint64_t ArtifactCache::fingerprint() {
  if (fingerprint_.has_value()) {
    ++stats_.hits;
    return *fingerprint_;
  }
  ++stats_.misses;
  fingerprint_ = graph_fingerprint(graph_);
  return *fingerprint_;
}

const std::vector<VertexId>& ArtifactCache::topo_order() {
  if (topo_.has_value()) {
    ++stats_.hits;
    return *topo_;
  }
  ++stats_.misses;
  auto order = topological_order(graph_);
  GIO_EXPECTS_MSG(order.has_value(), "graph is cyclic");
  topo_ = std::move(*order);
  return *topo_;
}

const la::CsrMatrix& ArtifactCache::laplacian(LaplacianKind kind) {
  const auto it = laplacians_.find(kind);
  if (it != laplacians_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  return laplacians_.emplace(kind, graphio::laplacian(graph_, kind))
      .first->second;
}

namespace {

/// Options equality restricted to the fields that change what the
/// eigensolver computes; a cached spectrum only satisfies requests made
/// under equivalent options.
bool solver_options_equal(const SpectralOptions& a,
                          const SpectralOptions& b) {
  return a.backend == b.backend && a.eig_rel_tol == b.eig_rel_tol &&
         a.dense_threshold == b.dense_threshold &&
         a.dense_rescue_threshold == b.dense_rescue_threshold &&
         a.lanczos.block_size == b.lanczos.block_size &&
         a.lanczos.max_basis == b.lanczos.max_basis &&
         a.lanczos.stall_basis_cap == b.lanczos.stall_basis_cap &&
         a.lanczos.max_cycles == b.lanczos.max_cycles;
}

}  // namespace

const ArtifactCache::SpectrumArtifact& ArtifactCache::spectrum(
    LaplacianKind kind, int count, const SpectralOptions& options) {
  GIO_EXPECTS(count >= 0);
  count = static_cast<int>(
      std::min<std::int64_t>(count, graph_.num_vertices()));
  const auto it = spectra_.find(kind);
  // Hit on `requested`, not values.size(): a non-converged solve returns
  // a shorter prefix, and re-running the identical failing solve would
  // only repeat the most expensive case for the same partial answer.
  if (it != spectra_.end() && it->second.requested >= count &&
      solver_options_equal(spectra_options_.at(kind), options)) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  ++stats_.eigensolves;
  ++eigensolves_by_kind_[kind];
  WallTimer timer;
  SpectrumArtifact artifact;
  artifact.requested = count;
  artifact.values = smallest_laplacian_eigenvalues(
      graph_, kind, count, options, &artifact.converged);
  artifact.seconds = timer.seconds();
  spectra_options_.insert_or_assign(kind, options);
  return spectra_.insert_or_assign(kind, std::move(artifact)).first->second;
}

std::int64_t ArtifactCache::cached_spectrum_values(
    LaplacianKind kind) const noexcept {
  const auto it = spectra_.find(kind);
  return it == spectra_.end()
             ? 0
             : static_cast<std::int64_t>(it->second.values.size());
}

const flow::ConvexMinCutResult& ArtifactCache::max_wavefront_cut(
    const flow::ConvexMinCutOptions& options) {
  const auto it = max_cuts_.find(options.engine);
  if (it != max_cuts_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  ++stats_.mincut_sweeps;
  // Memory 0 keeps every cut relevant; per-M bounds derive from best_cut.
  return max_cuts_
      .emplace(options.engine,
               flow::convex_mincut_bound(graph_, 0.0, options))
      .first->second;
}

std::int64_t ArtifactCache::eigensolves(LaplacianKind kind) const noexcept {
  const auto it = eigensolves_by_kind_.find(kind);
  return it == eigensolves_by_kind_.end() ? 0 : it->second;
}

}  // namespace graphio::engine
