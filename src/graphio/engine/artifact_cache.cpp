#include "graphio/engine/artifact_cache.hpp"

#include <algorithm>
#include <utility>

#include "graphio/core/spectral_pipeline.hpp"
#include "graphio/engine/fingerprint.hpp"
#include "graphio/graph/topo.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/timer.hpp"

namespace graphio::engine {

ArtifactCache::ArtifactCache(Digraph graph,
                             std::shared_ptr<ComponentSpectrumCache> components,
                             std::optional<ComponentSeed> seed)
    : graph_(std::move(graph)),
      components_(std::move(components)),
      seed_(std::move(seed)) {
  if (components_ == nullptr)
    components_ = std::make_shared<ComponentSpectrumCache>();
}

ArtifactCache::Decomposition& ArtifactCache::decomposition() {
  if (decomp_.has_value()) return *decomp_;
  Decomposition d;
  if (seed_.has_value()) {
    // Adopt the seeded decomposition after validating that it partitions
    // the graph — a wrong seed would silently serve wrong spectra, so the
    // O(n) check is worth one pass. Components are renumbered to the
    // deterministic smallest-vertex order of weakly_connected_components.
    std::sort(seed_->components.begin(), seed_->components.end(),
              [](const ComponentSeed::Component& a,
                 const ComponentSeed::Component& b) {
                GIO_EXPECTS_MSG(!a.vertices.empty() && !b.vertices.empty(),
                                "component seed entries must not be empty");
                return a.vertices.front() < b.vertices.front();
              });
    const std::int64_t n = graph_.num_vertices();
    d.wc.count = static_cast<int>(seed_->components.size());
    d.wc.component_of.assign(static_cast<std::size_t>(n), -1);
    d.wc.local_id.assign(static_cast<std::size_t>(n), 0);
    std::int64_t covered = 0;
    std::int64_t edge_total = 0;
    for (int c = 0; c < d.wc.count; ++c) {
      ComponentSeed::Component& comp =
          seed_->components[static_cast<std::size_t>(c)];
      GIO_EXPECTS_MSG(!comp.vertices.empty(),
                      "component seed entries must not be empty");
      for (std::size_t i = 0; i < comp.vertices.size(); ++i) {
        const VertexId v = comp.vertices[i];
        GIO_EXPECTS_MSG(v >= 0 && v < n,
                        "component seed names vertex " + std::to_string(v) +
                            " outside the graph");
        GIO_EXPECTS_MSG(i == 0 || comp.vertices[i - 1] < v,
                        "component seed vertex lists must ascend");
        GIO_EXPECTS_MSG(d.wc.component_of[static_cast<std::size_t>(v)] == -1,
                        "component seed assigns vertex " + std::to_string(v) +
                            " twice");
        d.wc.component_of[static_cast<std::size_t>(v)] = c;
        d.wc.local_id[static_cast<std::size_t>(v)] =
            static_cast<VertexId>(i);
      }
      covered += static_cast<std::int64_t>(comp.vertices.size());
      edge_total += comp.edges;
      d.wc.vertices.push_back(std::move(comp.vertices));
      d.edges.push_back(comp.edges);
      d.fingerprints.push_back(comp.fingerprint);
      d.known.push_back(true);
    }
    GIO_EXPECTS_MSG(covered == n,
                    "component seed must cover every vertex of the graph");
    GIO_EXPECTS_MSG(edge_total == graph_.num_edges(),
                    "component seed edge counts must sum to the graph's");
    seed_.reset();
  } else {
    d.wc = weakly_connected_components(graph_);
    d.edges.reserve(static_cast<std::size_t>(d.wc.count));
    for (int c = 0; c < d.wc.count; ++c)
      d.edges.push_back(d.wc.edges_in(graph_, c));
    d.fingerprints.assign(static_cast<std::size_t>(d.wc.count), 0);
    d.known.assign(static_cast<std::size_t>(d.wc.count), false);
  }
  decomp_ = std::move(d);
  return *decomp_;
}

ComponentPlan ArtifactCache::build_plan(const SpectralOptions& options) {
  ComponentPlan plan;
  if (!options.decompose) {
    // Monolithic: one in-place entry covering the whole graph, content-
    // addressed by the whole-graph fingerprint (its cache entries stay
    // distinct from decomposed ones — solver_options_equal keys the
    // decompose switch).
    PlannedComponent whole;
    whole.vertices = graph_.num_vertices();
    whole.edges = graph_.num_edges();
    whole.in_place = &graph_;
    if (fingerprint_.has_value()) {
      whole.fingerprint = *fingerprint_;
      whole.fingerprinted = true;
    } else {
      whole.fingerprint_fn = [this] {
        fingerprint_ = graph_fingerprint(graph_);
        return *fingerprint_;
      };
    }
    plan.components.push_back(std::move(whole));
    return plan;
  }
  Decomposition& d = decomposition();
  plan.components.reserve(static_cast<std::size_t>(d.wc.count));
  for (int c = 0; c < d.wc.count; ++c) {
    PlannedComponent entry;
    entry.vertices = static_cast<std::int64_t>(
        d.wc.vertices[static_cast<std::size_t>(c)].size());
    entry.edges = d.edges[static_cast<std::size_t>(c)];
    if (d.known[static_cast<std::size_t>(c)]) {
      entry.fingerprint = d.fingerprints[static_cast<std::size_t>(c)];
      entry.fingerprinted = true;
    } else {
      // In-place hash of the still-unextracted component; memoized so a
      // later kind (or a re-request with new options) pays zero.
      entry.fingerprint_fn = [this, c] {
        Decomposition& dd = *decomp_;
        const auto i = static_cast<std::size_t>(c);
        dd.fingerprints[i] = subgraph_fingerprint(graph_, dd.wc, c);
        dd.known[i] = true;
        return dd.fingerprints[i];
      };
    }
    if (d.wc.count == 1) {
      // A connected graph's single component reproduces the graph
      // verbatim — solve in place, never copy.
      entry.in_place = &graph_;
    } else {
      entry.materialize = [this, c] {
        return decomp_->wc.subgraph(graph_, c);
      };
    }
    plan.components.push_back(std::move(entry));
  }
  return plan;
}

std::uint64_t ArtifactCache::fingerprint() {
  if (fingerprint_.has_value()) {
    ++stats_.hits;
    return *fingerprint_;
  }
  ++stats_.misses;
  fingerprint_ = graph_fingerprint(graph_);
  return *fingerprint_;
}

const std::vector<VertexId>& ArtifactCache::topo_order() {
  if (topo_.has_value()) {
    ++stats_.hits;
    return *topo_;
  }
  ++stats_.misses;
  auto order = topological_order(graph_);
  GIO_EXPECTS_MSG(order.has_value(), "graph is cyclic");
  topo_ = std::move(*order);
  return *topo_;
}

const la::CsrMatrix& ArtifactCache::laplacian(LaplacianKind kind) {
  const auto it = laplacians_.find(kind);
  if (it != laplacians_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  return laplacians_.emplace(kind, graphio::laplacian(graph_, kind))
      .first->second;
}

const ArtifactCache::SpectrumArtifact& ArtifactCache::spectrum(
    LaplacianKind kind, int count, const SpectralOptions& options) {
  GIO_EXPECTS(count >= 0);
  count = static_cast<int>(
      std::min<std::int64_t>(count, graph_.num_vertices()));
  const auto it = spectra_.find(kind);
  // Hit on `requested`, not values.size(): a non-converged solve returns
  // a shorter prefix, and re-running the identical failing solve would
  // only repeat the most expensive case for the same partial answer.
  if (it != spectra_.end() && it->second.requested >= count &&
      solver_options_equal(spectra_options_.at(kind), options)) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  WallTimer timer;

  // Lookup-then-extract: the plan describes every component without its
  // vertex data, the resolver answers clean components straight from the
  // fingerprint-keyed cache (zero allocations), and only misses
  // materialize their subgraph and eigensolve. Equal components (within
  // this graph or, via an Engine-shared cache, across specs) eigensolve
  // once per process; trivial (edgeless) components never touch the
  // cache — recomputing zeros is cheaper than fingerprinting them.
  SpectralPipeline pipeline(options);
  pipeline.set_component_resolver(
      [this](std::uint64_t fp, std::int64_t, std::int64_t, LaplacianKind k,
             int h, const SpectralOptions& opts) {
        return components_->lookup(fp, k, h, opts);
      },
      [this](std::uint64_t fp, LaplacianKind k, int requested,
             const SpectralOptions& opts, const ComponentSolve& solve) {
        components_->store(fp, k, requested, opts, solve);
      });
  const PipelineResult result = pipeline.run_plan(build_plan(options), kind,
                                                  count);

  SpectrumArtifact artifact;
  artifact.requested = count;
  artifact.values = result.values;
  artifact.converged = result.converged;
  artifact.components = result.components;
  artifact.eigensolves = result.eigensolves;
  artifact.component_hits = result.component_cache_hits;
  artifact.subgraph_extractions = result.subgraph_extractions;
  artifact.fingerprint_computes = result.fingerprint_computes;
  artifact.phases = result.phases;
  if (options.decompose && decomp_.has_value())
    artifact.component_fingerprints = decomp_->fingerprints;
  artifact.seconds = timer.seconds();
  stats_.eigensolves += result.eigensolves;
  stats_.component_hits += result.component_cache_hits;
  stats_.subgraph_extractions += result.subgraph_extractions;
  stats_.fingerprint_computes += result.fingerprint_computes;
  stats_.fingerprint_seconds += result.phases.fingerprint_seconds;
  stats_.extract_seconds += result.phases.extract_seconds;
  stats_.solve_seconds += result.phases.solve_seconds;
  stats_.merge_seconds += result.phases.merge_seconds;
  eigensolves_by_kind_[kind] += result.eigensolves;
  spectra_options_.insert_or_assign(kind, options);
  return spectra_.insert_or_assign(kind, std::move(artifact)).first->second;
}

std::int64_t ArtifactCache::cached_spectrum_values(
    LaplacianKind kind) const noexcept {
  const auto it = spectra_.find(kind);
  return it == spectra_.end()
             ? 0
             : static_cast<std::int64_t>(it->second.values.size());
}

const flow::ConvexMinCutResult& ArtifactCache::max_wavefront_cut(
    const flow::ConvexMinCutOptions& options) {
  const auto it = max_cuts_.find(options.engine);
  if (it != max_cuts_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  ++stats_.mincut_sweeps;
  // Memory 0 keeps every cut relevant; per-M bounds derive from best_cut.
  return max_cuts_
      .emplace(options.engine,
               flow::convex_mincut_bound(graph_, 0.0, options))
      .first->second;
}

std::int64_t ArtifactCache::eigensolves(LaplacianKind kind) const noexcept {
  const auto it = eigensolves_by_kind_.find(kind);
  return it == eigensolves_by_kind_.end() ? 0 : it->second;
}

}  // namespace graphio::engine
