#include "graphio/engine/fingerprint.hpp"

namespace graphio::engine {

std::uint64_t graph_fingerprint(const Digraph& g) noexcept {
  std::uint64_t h = fnv64_begin();
  h = fnv64_mix(h, static_cast<std::uint64_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Delimit each adjacency list so (1-child, 1-child) hashes differently
    // from (2-children, 0-children).
    h = fnv64_mix(h, static_cast<std::uint64_t>(g.out_degree(v)));
    for (VertexId c : g.children(v))
      h = fnv64_mix(h, static_cast<std::uint64_t>(c));
  }
  return h;
}

std::uint64_t subgraph_fingerprint(const Digraph& g, const WeakComponents& wc,
                                   int c) noexcept {
  // Mirrors graph_fingerprint over the virtual subgraph: local vertex i
  // is wc.vertices[c][i] (ascending original ids, the extraction order),
  // and each child maps through wc.local_id — the same values the
  // extracted subgraph's adjacency lists would hold, in the same order.
  const std::vector<VertexId>& ids =
      wc.vertices[static_cast<std::size_t>(c)];
  std::uint64_t h = fnv64_begin();
  h = fnv64_mix(h, static_cast<std::uint64_t>(ids.size()));
  for (VertexId v : ids) {
    h = fnv64_mix(h, static_cast<std::uint64_t>(g.out_degree(v)));
    for (VertexId w : g.children(v))
      h = fnv64_mix(
          h, static_cast<std::uint64_t>(
                 wc.local_id[static_cast<std::size_t>(w)]));
  }
  return h;
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[fingerprint & 0xF];
    fingerprint >>= 4;
  }
  return out;
}

}  // namespace graphio::engine
