#include "graphio/engine/fingerprint.hpp"

namespace graphio::engine {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t mix(std::uint64_t h, std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (8 * byte)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t graph_fingerprint(const Digraph& g) noexcept {
  std::uint64_t h = kFnvOffset;
  h = mix(h, static_cast<std::uint64_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Delimit each adjacency list so (1-child, 1-child) hashes differently
    // from (2-children, 0-children).
    h = mix(h, static_cast<std::uint64_t>(g.out_degree(v)));
    for (VertexId c : g.children(v)) h = mix(h, static_cast<std::uint64_t>(c));
  }
  return h;
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[fingerprint & 0xF];
    fingerprint >>= 4;
  }
  return out;
}

}  // namespace graphio::engine
