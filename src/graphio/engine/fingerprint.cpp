#include "graphio/engine/fingerprint.hpp"

namespace graphio::engine {

std::uint64_t graph_fingerprint(const Digraph& g) noexcept {
  std::uint64_t h = fnv64_begin();
  h = fnv64_mix(h, static_cast<std::uint64_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Delimit each adjacency list so (1-child, 1-child) hashes differently
    // from (2-children, 0-children).
    h = fnv64_mix(h, static_cast<std::uint64_t>(g.out_degree(v)));
    for (VertexId c : g.children(v))
      h = fnv64_mix(h, static_cast<std::uint64_t>(c));
  }
  return h;
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[fingerprint & 0xF];
    fingerprint >>= 4;
  }
  return out;
}

}  // namespace graphio::engine
