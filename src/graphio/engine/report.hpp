// BoundReport — the structured result of one Engine evaluation, with
// uniform JSON (io/json) and console-table (support/table) serialization.
// Every CLI command, example, and bench that reports bounds renders one of
// these instead of hand-rolling output.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graphio/audit/provenance.hpp"
#include "graphio/engine/artifact_cache.hpp"
#include "graphio/engine/method.hpp"
#include "graphio/io/json.hpp"
#include "graphio/support/table.hpp"

namespace graphio::engine {

struct BoundReport {
  /// Display name of the analyzed graph (spec text when available).
  std::string graph;
  std::int64_t vertices = 0;
  std::int64_t edges = 0;
  std::int64_t processors = 1;
  std::vector<double> memories;
  /// One row per (method, memory), grouped by method in registry order.
  std::vector<MethodRow> rows;
  /// Artifact reuse during this evaluation (hits/misses/eigensolves are
  /// deltas for this request, not cache lifetime totals).
  ArtifactCache::Stats cache;
  /// Per-result lineage: which spectra this evaluation consumed, the
  /// solver tier each component actually took, and the registry deltas
  /// the claims reconcile against (audit/provenance.hpp). Always
  /// assembled; serialized only on request (`--explain`).
  audit::ProvenanceRecord provenance;
  /// Total wall time of the evaluation.
  double seconds = 0.0;

  /// Rows of one method, in sweep order (empty when not evaluated).
  [[nodiscard]] std::vector<const MethodRow*> rows_for(
      std::string_view method) const;
  /// The row for (method, memory), or nullptr.
  [[nodiscard]] const MethodRow* row(std::string_view method,
                                     double memory) const;

  /// Serializes into an open JSON writer (for embedding in arrays).
  /// With include_timing=false, wall-clock fields (seconds, per-row
  /// seconds) and cache-delta stats are omitted, making the output a pure
  /// function of the analysis — the serve layer streams this form so
  /// result files compare byte-identical across thread counts and
  /// warm/cold store runs. include_provenance adds the lineage record
  /// under "provenance"; it is off by default because tiers legitimately
  /// differ between warm and cold store states, which would break the
  /// deterministic-diff property above.
  void append_json(io::JsonWriter& w, bool include_timing = true,
                   bool include_provenance = false) const;
  /// Complete JSON document.
  [[nodiscard]] std::string to_json() const;
  /// Console table: method | M | kind | bound | detail | conv | seconds.
  [[nodiscard]] Table to_table() const;
};

/// A JSON array of reports (batch output).
std::string reports_to_json(std::span<const BoundReport> reports);

/// One combined table for a batch: graph | method | M | ... (used by the
/// CLI `compare` command).
Table reports_to_table(std::span<const BoundReport> reports);

}  // namespace graphio::engine
