// Content fingerprints for computation graphs.
//
// The serve subsystem's persistent ResultStore keys results by *what was
// analyzed*, not by how the request named it: "fft:5", a copy of the same
// graph loaded from an edgelist file, and an equal DOT file all hash to
// the same fingerprint, so a warm store serves them all from disk. The
// hash covers exactly the structure the bounds depend on — vertex count
// and the full adjacency (with edge multiplicity) — and deliberately
// ignores vertex names, which never influence any bound.
#pragma once

#include <cstdint>
#include <string>

#include "graphio/graph/components.hpp"
#include "graphio/graph/digraph.hpp"

namespace graphio::engine {

/// The FNV-1a primitive behind every fingerprint in the library: seed
/// with fnv64_begin(), then fold 64-bit words with fnv64_mix. Exposed so
/// derived fingerprints (the stream session's component-multiset hash)
/// stay on the same scheme as graph_fingerprint.
[[nodiscard]] constexpr std::uint64_t fnv64_begin() noexcept {
  return 1469598103934665603ULL;
}
[[nodiscard]] constexpr std::uint64_t fnv64_mix(std::uint64_t h,
                                                std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (8 * byte)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

/// 64-bit FNV-1a over (n, adjacency lists in vertex order). Stable across
/// platforms and process runs; identical graphs always collide, distinct
/// graphs collide with probability ~2^-64.
[[nodiscard]] std::uint64_t graph_fingerprint(const Digraph& g) noexcept;

/// graph_fingerprint of WeakComponents::subgraph(g, c), computed in place
/// — bit-identical to hashing the extracted subgraph, without building
/// it. Sound because weak components are edge-closed (every edge of a
/// member vertex stays inside the component) and extraction maps member
/// vertices to local ids in ascending order. This is what lets the
/// fingerprint-first query path look a component up before — usually
/// instead of — materializing it.
[[nodiscard]] std::uint64_t subgraph_fingerprint(const Digraph& g,
                                                 const WeakComponents& wc,
                                                 int c) noexcept;

/// Fixed-width lowercase hex rendering ("00af3b…", 16 chars) — the form
/// used in result-store keys and JSONL records.
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fingerprint);

}  // namespace graphio::engine
