#include <algorithm>
#include <cmath>

#include "graphio/core/analytic_bounds.hpp"
#include "graphio/engine/method.hpp"
#include "graphio/exact/pebble_search.hpp"
#include "graphio/sim/memsim.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/timer.hpp"

namespace graphio::engine {

std::string_view to_string(BoundKind kind) {
  switch (kind) {
    case BoundKind::kLower: return "lower";
    case BoundKind::kUpper: return "upper";
    case BoundKind::kExact: return "exact";
    case BoundKind::kCertificate: return "certificate";
  }
  return "?";
}

namespace {

MethodRow base_row(const BoundMethod& method, double memory,
                   std::int64_t processors = 1) {
  MethodRow row;
  row.method = std::string(method.id());
  row.memory = memory;
  row.processors = processors;
  row.kind = method.kind();
  return row;
}

std::vector<MethodRow> inapplicable_rows(const BoundMethod& method,
                                         std::span<const double> memories,
                                         const std::string& why,
                                         std::int64_t processors = 1) {
  std::vector<MethodRow> rows;
  rows.reserve(memories.size());
  for (double m : memories) {
    MethodRow row = base_row(method, m, processors);
    row.applicable = false;
    row.note = why;
    rows.push_back(std::move(row));
  }
  return rows;
}

// ---------------------------------------------------------------- spectral

/// Shared Theorem 4/5/6 evaluation: one cached spectrum, one cheap
/// max-over-k per memory size. Unlike the free-function fast path, the
/// cache always resolves the full h = min(max_eigenvalues, n) prefix so
/// that every method and every M of the request (and later requests on
/// the same graph) reuse a single eigendecomposition.
std::vector<MethodRow> spectral_rows(const BoundMethod& method,
                                     MethodContext& ctx,
                                     std::span<const double> memories,
                                     LaplacianKind kind, double scale,
                                     std::int64_t processors) {
  const std::int64_t n = ctx.cache.num_vertices();
  WallTimer timer;
  const int h = static_cast<int>(std::min<std::int64_t>(
      ctx.request.spectral.max_eigenvalues, n));
  const ArtifactCache::SpectrumArtifact& spectrum =
      ctx.cache.spectrum(kind, h, ctx.request.spectral);

  std::vector<MethodRow> rows;
  rows.reserve(memories.size());
  for (std::size_t i = 0; i < memories.size(); ++i) {
    MethodRow row = base_row(method, memories[i], processors);
    const BoundOverK best = bound_from_spectrum(
        spectrum.values, n, memories[i], processors, scale);
    row.value = best.bound;
    row.best_k = best.best_k;
    row.converged = spectrum.converged;
    row.degraded = spectrum.degraded;
    row.note = "k=" + std::to_string(best.best_k);
    if (spectrum.components > 1)
      row.note += " components=" + std::to_string(spectrum.components);
    row.seconds = i == 0 ? timer.seconds() : 0.0;
    rows.push_back(std::move(row));
  }
  return rows;
}

class SpectralMethod final : public BoundMethod {
 public:
  std::string_view id() const override { return "spectral"; }
  std::string_view summary() const override {
    return "Theorem 4: spectral bound on the normalized Laplacian";
  }
  BoundKind kind() const override { return BoundKind::kLower; }
  std::vector<MethodRow> evaluate(
      MethodContext& ctx, std::span<const double> memories) const override {
    return spectral_rows(*this, ctx, memories,
                         LaplacianKind::kOutDegreeNormalized, 1.0, 1);
  }
};

class SpectralPlainMethod final : public BoundMethod {
 public:
  std::string_view id() const override { return "spectral-plain"; }
  std::string_view summary() const override {
    return "Theorem 5: spectral bound on the plain Laplacian";
  }
  BoundKind kind() const override { return BoundKind::kLower; }
  std::vector<MethodRow> evaluate(
      MethodContext& ctx, std::span<const double> memories) const override {
    const std::int64_t dmax = ctx.cache.max_out_degree();
    if (dmax == 0) {
      // Edgeless graph: the Laplacian is zero and the bound is trivially 0.
      std::vector<MethodRow> rows;
      for (double m : memories) rows.push_back(base_row(*this, m));
      return rows;
    }
    return spectral_rows(*this, ctx, memories, LaplacianKind::kPlain,
                         1.0 / static_cast<double>(dmax), 1);
  }
};

class ParallelMethod final : public BoundMethod {
 public:
  std::string_view id() const override { return "parallel"; }
  std::string_view summary() const override {
    return "Theorem 6: per-processor bound for p processors";
  }
  BoundKind kind() const override { return BoundKind::kLower; }
  std::vector<MethodRow> evaluate(
      MethodContext& ctx, std::span<const double> memories) const override {
    return spectral_rows(*this, ctx, memories,
                         LaplacianKind::kOutDegreeNormalized, 1.0,
                         ctx.request.processors);
  }
};

// ------------------------------------------------------------------ mincut

class MincutMethod final : public BoundMethod {
 public:
  std::string_view id() const override { return "mincut"; }
  std::string_view summary() const override {
    return "convex min-cut baseline (Elango et al.)";
  }
  BoundKind kind() const override { return BoundKind::kLower; }
  std::vector<MethodRow> evaluate(
      MethodContext& ctx, std::span<const double> memories) const override {
    WallTimer timer;
    // The wavefront cuts C(v) are M-independent; one per-component sweep
    // serves the whole memory sweep. Weak components share no wavefront,
    // so the per-component bounds 2*max(0, C_c - M) sum — equal to the
    // classical whole-graph bound on connected graphs and at least as
    // strong on disjoint unions.
    const ArtifactCache::WavefrontArtifact& sweep =
        ctx.cache.max_wavefront_cut(ctx.request.mincut);
    std::vector<MethodRow> rows;
    rows.reserve(memories.size());
    for (std::size_t i = 0; i < memories.size(); ++i) {
      MethodRow row = base_row(*this, memories[i]);
      double total = 0.0;
      for (std::int64_t cut : sweep.cuts)
        total += std::max(0.0, 2.0 * (static_cast<double>(cut) - memories[i]));
      row.value = total;
      row.converged = sweep.completed;
      row.note = "C(v)=" + std::to_string(sweep.best_cut);
      if (sweep.components > 1)
        row.note += " components=" + std::to_string(sweep.components);
      row.seconds = i == 0 ? timer.seconds() : 0.0;
      rows.push_back(std::move(row));
    }
    return rows;
  }
};

// ------------------------------------------------------------ partition-dp

class PartitionDpMethod final : public BoundMethod {
 public:
  std::string_view id() const override { return "partition-dp"; }
  std::string_view summary() const override {
    return "optimal Lemma 1 partition of the natural order (certifies J(X))";
  }
  BoundKind kind() const override { return BoundKind::kCertificate; }
  std::vector<MethodRow> evaluate(
      MethodContext& ctx, std::span<const double> memories) const override {
    // Per-component DP composed by the cache (segment costs are additive
    // across weak components): clean components resolve their objective
    // from the artifact store, so a stream patch re-runs the O(n²) DP on
    // exactly the dirty components — and the lazy graph never
    // materializes.
    std::vector<MethodRow> rows;
    rows.reserve(memories.size());
    for (double m : memories) {
      WallTimer timer;
      MethodRow row = base_row(*this, m);
      try {
        const ArtifactCache::PartitionArtifact& r =
            ctx.cache.partition_row(m);
        row.value = r.bound;
        row.best_k = static_cast<int>(r.segments);
        row.note = "segments=" + std::to_string(r.segments);
      } catch (const contract_error&) {
        return inapplicable_rows(*this, memories, "graph is cyclic");
      }
      row.seconds = timer.seconds();
      rows.push_back(std::move(row));
    }
    return rows;
  }
};

// ---------------------------------------------------------------- analytic

class AnalyticMethod final : public BoundMethod {
 public:
  std::string_view id() const override { return "analytic"; }
  std::string_view summary() const override {
    return "Section 5 closed forms (fft / bhk / er families)";
  }
  BoundKind kind() const override { return BoundKind::kLower; }
  std::vector<MethodRow> evaluate(
      MethodContext& ctx, std::span<const double> memories) const override {
    const GraphSpec* spec = ctx.spec;
    if (spec == nullptr)
      return inapplicable_rows(*this, memories,
                               "closed forms need a family spec");
    std::vector<MethodRow> rows;
    rows.reserve(memories.size());
    if (spec->family == "fft") {
      const int l = static_cast<int>(spec->int_param(0));
      for (double m : memories) {
        MethodRow row = base_row(*this, m);
        int alpha = 0;
        row.value = std::max(0.0, analytic::fft_bound_best_alpha(l, m, &alpha));
        row.best_k = alpha;
        row.note = "alpha=" + std::to_string(alpha);
        rows.push_back(std::move(row));
      }
      return rows;
    }
    if (spec->family == "bhk") {
      const int l = static_cast<int>(spec->int_param(0));
      for (double m : memories) {
        MethodRow row = base_row(*this, m);
        int alpha = 0;
        row.value = std::max(0.0, analytic::bhk_bound_best_alpha(l, m, &alpha));
        row.best_k = alpha;
        row.note = "alpha=" + std::to_string(alpha);
        rows.push_back(std::move(row));
      }
      return rows;
    }
    if (spec->family == "er") {
      const std::int64_t n = spec->int_param(0);
      const double p = spec->double_param(1);
      const double p0 =
          n > 1 ? p * static_cast<double>(n - 1) /
                      std::log(static_cast<double>(n))
                : 0.0;
      if (p0 <= 6.0)
        return inapplicable_rows(
            *this, memories,
            "er closed form needs the sparse regime p0 > 6");
      for (double m : memories) {
        MethodRow row = base_row(*this, m);
        row.value = std::max(0.0, analytic::er_sparse_bound(n, p0, m));
        row.best_k = 2;  // the closed form fixes k = 2
        row.note = "p0=" + std::to_string(p0);
        rows.push_back(std::move(row));
      }
      return rows;
    }
    return inapplicable_rows(
        *this, memories, "no closed form for family '" + spec->family + "'");
  }
};

// ------------------------------------------------------------ pebble-exact

class PebbleExactMethod final : public BoundMethod {
 public:
  std::string_view id() const override { return "pebble-exact"; }
  std::string_view summary() const override {
    return "exact J* by state-space search (tiny graphs)";
  }
  BoundKind kind() const override { return BoundKind::kExact; }
  std::vector<MethodRow> evaluate(
      MethodContext& ctx, std::span<const double> memories) const override {
    if (ctx.cache.num_vertices() > exact::kMaxExactVertices)
      return inapplicable_rows(
          *this, memories,
          "graph exceeds " + std::to_string(exact::kMaxExactVertices) +
              " vertices");
    const Digraph& g = ctx.cache.graph();
    std::vector<MethodRow> rows;
    rows.reserve(memories.size());
    for (double m : memories) {
      MethodRow row = base_row(*this, m);
      WallTimer timer;
      try {
        const exact::ExactResult r = exact::exact_optimal_io(
            g, static_cast<std::int64_t>(m), ctx.request.exact);
        row.value = static_cast<double>(r.io);
        row.converged = r.complete;
        row.note = "states=" + std::to_string(r.states_expanded);
        if (!r.complete) {
          row.applicable = false;
          row.note += " (state cap hit)";
        }
      } catch (const contract_error& e) {
        row.applicable = false;
        row.note = e.what();
      }
      row.seconds = timer.seconds();
      rows.push_back(std::move(row));
    }
    return rows;
  }
};

// ---------------------------------------------------------------- memsim

class MemsimMethod final : public BoundMethod {
 public:
  std::string_view id() const override { return "memsim"; }
  std::string_view summary() const override {
    return "best simulated schedule (upper bound on J*)";
  }
  BoundKind kind() const override { return BoundKind::kUpper; }
  std::vector<MethodRow> evaluate(
      MethodContext& ctx, std::span<const double> memories) const override {
    // Whole-graph feasibility; every component's max in-degree is <= it.
    const std::int64_t dmax_in = ctx.cache.max_in_degree();
    std::vector<MethodRow> rows;
    rows.reserve(memories.size());
    for (double m : memories) {
      MethodRow row = base_row(*this, m);
      const auto mem = static_cast<std::int64_t>(m);
      if (static_cast<double>(dmax_in) > m || mem < 1) {
        row.applicable = false;
        row.note = "no feasible schedule: max in-degree exceeds M";
        rows.push_back(std::move(row));
        continue;
      }
      WallTimer timer;
      try {
        // Per weak component (components share no values, so sequential
        // per-component schedules compose); each row resolves through
        // the artifact store, so only dirty components simulate.
        const ArtifactCache::MemsimArtifact& r =
            ctx.cache.memsim_row(mem, ctx.request.sim_random_orders);
        row.value = static_cast<double>(r.total());
        row.note = "reads=" + std::to_string(r.reads) +
                   " writes=" + std::to_string(r.writes);
      } catch (const contract_error& e) {
        row.applicable = false;
        row.note = e.what();
      }
      row.seconds = timer.seconds();
      rows.push_back(std::move(row));
    }
    return rows;
  }
};

}  // namespace

const std::vector<const BoundMethod*>& methods() {
  static const SpectralMethod spectral;
  static const SpectralPlainMethod spectral_plain;
  static const ParallelMethod parallel;
  static const MincutMethod mincut;
  static const PartitionDpMethod partition_dp;
  static const AnalyticMethod analytic;
  static const PebbleExactMethod pebble_exact;
  static const MemsimMethod memsim;
  static const std::vector<const BoundMethod*> all = {
      &spectral, &spectral_plain, &parallel,     &mincut,
      &partition_dp, &analytic,   &pebble_exact, &memsim};
  return all;
}

const BoundMethod* find_method(std::string_view id) {
  for (const BoundMethod* method : methods())
    if (method->id() == id) return method;
  return nullptr;
}

std::vector<const BoundMethod*> select_methods(const BoundRequest& request) {
  bool all = request.methods.empty();
  for (const std::string& id : request.methods)
    if (id == "all") all = true;
  if (all) return methods();
  std::vector<const BoundMethod*> selected;
  selected.reserve(request.methods.size());
  for (const std::string& id : request.methods) {
    const BoundMethod* method = find_method(id);
    if (method == nullptr) {
      std::string known;
      for (const std::string& known_id : method_ids()) {
        if (!known.empty()) known += "|";
        known += known_id;
      }
      GIO_EXPECTS_MSG(false, "unknown method '" + id + "' (known: " + known +
                                 "|all)");
    }
    selected.push_back(method);
  }
  return selected;
}

std::vector<std::string> method_ids() {
  std::vector<std::string> ids;
  ids.reserve(methods().size());
  for (const BoundMethod* method : methods())
    ids.emplace_back(method->id());
  return ids;
}

}  // namespace graphio::engine
