#include "graphio/engine/component_cache.hpp"

#include <algorithm>

namespace graphio::engine {

std::optional<ComponentSolve> ComponentSpectrumCache::lookup(
    std::uint64_t fingerprint, LaplacianKind kind, int count,
    const SpectralOptions& options) {
  const std::scoped_lock lock(mutex_);
  const auto it = entries_.find({fingerprint, kind});
  if (it != entries_.end()) {
    for (const Entry& entry : it->second) {
      if (entry.requested < count ||
          !solver_options_equal(entry.options, options))
        continue;
      ++hits_;
      ComponentSolve solve = entry.solve;
      // Truncate to the request (values are ascending, so the prefix IS
      // the smallest `count`) — equal-count requests then see one
      // deterministic answer regardless of cache population order; see
      // the header for the dense-vs-sparse fidelity contract.
      if (static_cast<int>(solve.values.size()) > count)
        solve.values.resize(static_cast<std::size_t>(count));
      solve.from_cache = true;
      solve.solver_ran = false;  // this call ran no eigensolver
      solve.seconds = 0.0;
      return solve;
    }
  }
  ++misses_;
  return std::nullopt;
}

void ComponentSpectrumCache::store(std::uint64_t fingerprint,
                                   LaplacianKind kind, int requested,
                                   const SpectralOptions& options,
                                   const ComponentSolve& solve) {
  const std::scoped_lock lock(mutex_);
  std::vector<Entry>& slots = entries_[{fingerprint, kind}];
  for (Entry& entry : slots) {
    if (!solver_options_equal(entry.options, options)) continue;
    // Two workers can race to solve the same component; keep the entry
    // that answers more future requests (ties keep the existing one).
    if (entry.requested >= requested) return;
    entry.solve = solve;
    entry.solve.from_cache = false;
    entry.requested = requested;
    return;
  }
  Entry entry;
  entry.solve = solve;
  entry.solve.from_cache = false;
  entry.requested = requested;
  entry.options = options;
  slots.push_back(std::move(entry));
}

std::int64_t ComponentSpectrumCache::erase(std::uint64_t fingerprint) {
  const std::scoped_lock lock(mutex_);
  std::int64_t removed = 0;
  // Keys sort by (fingerprint, kind), so the fingerprint's entries are one
  // contiguous range starting at the smallest kind.
  auto it = entries_.lower_bound({fingerprint, LaplacianKind{}});
  while (it != entries_.end() && it->first.first == fingerprint) {
    removed += static_cast<std::int64_t>(it->second.size());
    it = entries_.erase(it);
  }
  evicted_ += removed;
  return removed;
}

ComponentSpectrumCache::Stats ComponentSpectrumCache::stats() const {
  const std::scoped_lock lock(mutex_);
  std::int64_t entries = 0;
  for (const auto& [key, slots] : entries_)
    entries += static_cast<std::int64_t>(slots.size());
  return {hits_, misses_, entries, evicted_};
}

void ComponentSpectrumCache::clear() {
  const std::scoped_lock lock(mutex_);
  entries_.clear();
}

}  // namespace graphio::engine
