// Shared analysis artifacts for one computation graph.
//
// Every bound family consumes a handful of expensive graph-derived
// objects: a topological order, CSR Laplacians, eigen-spectra, and the
// maximum wavefront cut of the convex min-cut baseline. None of them
// depend on the memory size M, so one cache instance serves every method
// and every M of a sweep — the Engine computes each artifact at most once
// per graph. Per-component artifacts (spectra, topo orders, min-cut
// sweeps, memsim rows) additionally resolve through the content-addressed
// store::ArtifactStore before computing, so equal components across
// specs, stream patches, and (with a disk tier) process restarts compute
// once. Hit/miss counters are exposed so tests (and the CLI's JSON
// reports) can certify the reuse, e.g. that a full `--method all
// --memory 4,8,16` run performs exactly one eigendecomposition per
// Laplacian kind.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/flow/convex_mincut.hpp"
#include "graphio/graph/components.hpp"
#include "graphio/graph/digraph.hpp"
#include "graphio/graph/laplacian.hpp"
#include "graphio/la/csr_matrix.hpp"
#include "graphio/store/artifact_store.hpp"

namespace graphio::engine {

/// A precomputed component decomposition handed to an ArtifactCache by a
/// caller that already maintains one — the stream session's
/// DynamicComponents membership plus its incrementally-maintained
/// per-component fingerprints. With a seed installed, a per-component
/// artifact query never decomposes, never re-fingerprints, and
/// materializes only the components whose fingerprints miss the
/// ArtifactStore (for a stream session: exactly the dirty ones).
struct ComponentSeed {
  struct Component {
    /// Vertex ids of the owning graph, ascending (the extraction order).
    std::vector<VertexId> vertices;
    /// Edges inside the component (weak components are edge-closed).
    std::int64_t edges = 0;
    /// Content fingerprint — must equal graph_fingerprint of the
    /// component's extracted subgraph (the seeder's contract; the stream
    /// session maintains exactly this invariant across patches).
    std::uint64_t fingerprint = 0;
    /// Session-stable external id per vertex, aligned with `vertices`
    /// (ascending). Lets a retained eigenbasis remap its rows across
    /// vertex add/remove patches; empty when unavailable (warm reuse
    /// then requires an identical vertex count).
    std::vector<VertexId> external_ids;
    /// Pre-patch content fingerprint of this component (stream dirty
    /// components) — the key the warm-start layer falls back to when the
    /// component's own fingerprint has no retained basis.
    std::uint64_t predecessor = 0;
    bool has_predecessor = false;
  };
  std::vector<Component> components;
};

/// A graph described by callbacks instead of an owned Digraph — the
/// stream session hands one of these (plus a seed) after every patch, so
/// a query that only touches per-component artifacts never pays the
/// O(n + m) whole-graph materialization. `component` receives the index
/// of the seed component (in the caller's pre-sort order) to extract.
struct LazyGraph {
  std::int64_t vertices = 0;
  std::int64_t edges = 0;
  std::function<Digraph()> materialize;
  std::function<Digraph(int)> component;
  std::function<std::int64_t()> max_out_degree;
  std::function<std::int64_t()> max_in_degree;
};

class ArtifactCache {
 public:
  /// Takes ownership of the graph; artifacts are computed lazily.
  /// Per-component artifacts resolve through `store`, the
  /// fingerprint-keyed content-addressed artifact store — pass an
  /// Engine-shared instance so equal components across specs (and across
  /// the batch fan-out's private caches) compute once per process (or,
  /// with a disk tier, once ever); when null, the cache creates a private
  /// memory-only one (identical components *within* one graph still
  /// dedupe). A `seed` (validated against the graph) pre-installs the
  /// decomposition and per-component fingerprints, so the query path
  /// skips both.
  explicit ArtifactCache(
      Digraph graph, std::shared_ptr<store::ArtifactStore> store = nullptr,
      std::optional<ComponentSeed> seed = std::nullopt);

  /// Lazy variant: the graph stays unmaterialized until a whole-graph
  /// consumer (partition-dp's DP, pebble-exact, monolithic spectra) asks
  /// for it; per-component artifact queries extract through
  /// `lazy.component` — only store misses — instead. Requires a seed:
  /// without known fingerprints every component would have to
  /// materialize anyway, defeating the point.
  ArtifactCache(LazyGraph lazy, std::shared_ptr<store::ArtifactStore> store,
                ComponentSeed seed);

  /// The graph, materializing it on first use for lazily-constructed
  /// caches.
  [[nodiscard]] const Digraph& graph();

  /// Structural counts, without materializing a lazy graph.
  [[nodiscard]] std::int64_t num_vertices() const noexcept;
  [[nodiscard]] std::int64_t num_edges() const noexcept;
  [[nodiscard]] std::int64_t max_out_degree();
  [[nodiscard]] std::int64_t max_in_degree();

  /// Content fingerprint of the graph (engine/fingerprint.hpp), computed
  /// on first use and cached — the serve ResultStore asks for it on every
  /// request.
  [[nodiscard]] std::uint64_t fingerprint();

  /// Kahn topological order (lowest-id-first), assembled per weak
  /// component: each component's order resolves from the ArtifactStore by
  /// content fingerprint or runs Kahn on just that component, and the
  /// per-component orders merge by smallest next global id — bit-identical
  /// to whole-graph Kahn, because the global greedy always picks the
  /// minimum over the components' local minima. Throws contract_error on
  /// cyclic graphs.
  const std::vector<VertexId>& topo_order();

  /// Sparse Laplacian of the requested kind.
  const la::CsrMatrix& laplacian(LaplacianKind kind);

  struct SpectrumArtifact {
    /// Certified lower estimates of the smallest eigenvalues, ascending.
    /// May be shorter than `requested` when the solver did not converge.
    std::vector<double> values;
    bool converged = true;
    /// True when the producing pipeline run was certified-truncated (a
    /// deadline or injected fault) — the values are a valid but weaker
    /// lower-bound spectrum; rows derived from them carry degraded:true.
    bool degraded = false;
    /// The count the artifact was computed for (values.size() can be
    /// smaller on non-convergence; re-requesting the same count is still
    /// a hit — re-running an identical failing solve helps nobody).
    int requested = 0;
    /// Eigensolver wall time for this artifact (charged once).
    double seconds = 0.0;
    /// Weak components the pipeline decomposed the graph into.
    int components = 1;
    /// Component eigensolves actually run for this artifact (solves
    /// served by the artifact store or trivially zero are excluded).
    std::int64_t eigensolves = 0;
    /// Component solves served by the shared artifact store.
    std::int64_t component_hits = 0;
    /// Component subgraphs materialized for this artifact — on the
    /// fingerprint-first path only resolver misses extract, so for a
    /// seeded (stream) cache this equals the dirty-component count.
    std::int64_t subgraph_extractions = 0;
    /// Component fingerprints computed for this artifact. Zero when the
    /// cache was seeded or an earlier artifact already hashed them —
    /// fingerprints are computed once per graph, not once per spectrum.
    std::int64_t fingerprint_computes = 0;
    /// Component solves seeded from a retained predecessor eigenbasis.
    std::int64_t warm_hits = 0;
    /// Iterations the warm starts avoided versus their producing solves.
    std::int64_t warm_iterations_saved = 0;
    /// Content fingerprint per component, in component order. Unseeded
    /// caches never hash trivial edgeless components, so those slots
    /// hold 0; seeded (stream) caches carry the seeder's fingerprint for
    /// every component.
    std::vector<std::uint64_t> component_fingerprints;
    /// Per-component solve detail of the pipeline run that built this
    /// artifact, in component order — the provenance layer's raw
    /// material (tier, iterations, residual, artifact source).
    std::vector<ComponentSolve> per_component;
    /// Monotonic per-cache spectrum-request ticks: `computed_serial` is
    /// the tick at which this artifact was (re)computed,
    /// `touched_serial` that of its most recent request (hit or
    /// compute). An evaluation brackets spectrum_touch_serial() to
    /// learn which artifacts it consumed and which it computed fresh.
    std::uint64_t computed_serial = 0;
    std::uint64_t touched_serial = 0;
  };

  /// The `count` smallest Laplacian eigenvalues. A request covered by a
  /// previously computed artifact (same kind, count not larger, same
  /// solver-relevant options) is a cache hit and triggers no eigensolve;
  /// a larger request or changed options recompute. The cached artifact
  /// may hold more than `count` values (it was computed for the larger
  /// request) — every consumer in the library maximizes over a prefix,
  /// so extra values only help.
  const SpectrumArtifact& spectrum(LaplacianKind kind, int count,
                                   const SpectralOptions& options = {});

  /// Values held by the cached spectrum for `kind` (0 when none) — const
  /// introspection, never computes.
  [[nodiscard]] std::int64_t cached_spectrum_values(
      LaplacianKind kind) const noexcept;

  /// The memory-independent core of the convex min-cut baseline, per weak
  /// component: cuts[c] = max_v C(v) within component c. Components share
  /// no wavefront (a down-closed set of a disjoint union is the union of
  /// per-component down-closed sets), so the bound at memory M composes
  /// per Kwasniewski-style subgraph summation:
  ///     J* ≥ Σ_c 2·max(0, cuts[c] − M)
  /// — equal to the classical whole-graph bound on connected graphs and
  /// at least as strong on disjoint unions. Each component's sweep
  /// resolves from the ArtifactStore by content fingerprint or computes
  /// (and, when completed, publishes). Cached per flow engine; a finite
  /// time budget applies per component on the first (computing) call.
  struct WavefrontArtifact {
    std::vector<std::int64_t> cuts;  ///< per component, component order
    std::int64_t best_cut = 0;       ///< max over components
    VertexId best_vertex = -1;       ///< global id of the argmax vertex
    bool completed = true;           ///< every component sweep completed
    int components = 1;
  };
  const WavefrontArtifact& max_wavefront_cut(
      const flow::ConvexMinCutOptions& options = {});

  /// Best simulated schedule cost at (memory, random_orders), summed per
  /// weak component. Components share no values, so scheduling them one
  /// after another is feasible whenever each fits — the sum is a valid
  /// (and never weaker) upper bound, identical to the whole-graph
  /// simulation on connected graphs. Per-component rows resolve from the
  /// ArtifactStore by content fingerprint. Requires memory ≥ the graph's
  /// max in-degree (the caller's feasibility guard); throws
  /// contract_error like sim::best_schedule_io otherwise.
  struct MemsimArtifact {
    std::int64_t reads = 0;
    std::int64_t writes = 0;
    int components = 1;
    [[nodiscard]] std::int64_t total() const noexcept {
      return reads + writes;
    }
  };
  const MemsimArtifact& memsim_row(std::int64_t memory, int random_orders);

  /// Optimal Lemma 1 partition certificate at `memory`, composed per weak
  /// component: segment costs are additive across components (no cross
  /// edges), and merging adjacent segments at a component seam costs
  /// nothing while refunding one 2M segment charge, so for the
  /// component-concatenated natural order the whole-graph optimum is
  ///     max(0, Σ_c objective_c + 2M·(k − 1))
  /// over the k components with edges (edgeless components fold into a
  /// neighboring segment at zero cost — their own −2M optimum exactly
  /// cancels their seam refund). Per-component objectives resolve from
  /// the ArtifactStore by content fingerprint (and persist through its
  /// disk tier); only misses extract their subgraph and run the O(n²)
  /// DP — a stream patch recomputes exactly the dirty components. At
  /// least as strong as the former whole-graph DP on the interleaved
  /// merged order, and identical on connected graphs. Throws
  /// contract_error on cyclic graphs.
  struct PartitionArtifact {
    double bound = 0.0;         ///< max(0, composed objective)
    std::int64_t segments = 0;  ///< maximizing partition (0 when bound 0)
    int components = 1;
  };
  const PartitionArtifact& partition_row(double memory);

  struct Stats {
    std::int64_t hits = 0;         ///< artifact requests served from cache
    std::int64_t misses = 0;       ///< artifact requests that computed
    std::int64_t eigensolves = 0;  ///< per-component eigendecomposition runs
    std::int64_t mincut_sweeps = 0;  ///< per-component wavefront sweeps run
    std::int64_t topo_computes = 0;  ///< per-component Kahn runs
    std::int64_t memsim_runs = 0;    ///< per-component schedule simulations
    std::int64_t partition_runs = 0; ///< per-component Lemma 1 DP runs
    /// Component solves served by the shared artifact store instead of an
    /// eigensolver run.
    std::int64_t component_hits = 0;
    /// Component subgraphs materialized (fingerprint-first resolver
    /// misses) — the stream invariant is extractions == dirty components.
    std::int64_t subgraph_extractions = 0;
    /// Component fingerprints computed (zero for seeded stream queries).
    std::int64_t fingerprint_computes = 0;
    /// Component eigensolves warm-started from a retained basis.
    std::int64_t warm_hits = 0;
    /// Iterations those warm starts avoided versus their producing solves.
    std::int64_t warm_iterations_saved = 0;
    /// Cumulative per-phase pipeline wall time (the stream bench's
    /// fingerprint / extract / solve / merge breakdown).
    double fingerprint_seconds = 0.0;
    double extract_seconds = 0.0;
    double solve_seconds = 0.0;
    double merge_seconds = 0.0;

    /// Aggregation across caches/workers and before/after deltas — the
    /// only two operations consumers perform; keeping them here means a
    /// new counter cannot be silently dropped at one of the call sites.
    Stats& operator+=(const Stats& other) noexcept {
      hits += other.hits;
      misses += other.misses;
      eigensolves += other.eigensolves;
      mincut_sweeps += other.mincut_sweeps;
      topo_computes += other.topo_computes;
      memsim_runs += other.memsim_runs;
      partition_runs += other.partition_runs;
      component_hits += other.component_hits;
      subgraph_extractions += other.subgraph_extractions;
      fingerprint_computes += other.fingerprint_computes;
      warm_hits += other.warm_hits;
      warm_iterations_saved += other.warm_iterations_saved;
      fingerprint_seconds += other.fingerprint_seconds;
      extract_seconds += other.extract_seconds;
      solve_seconds += other.solve_seconds;
      merge_seconds += other.merge_seconds;
      return *this;
    }
    [[nodiscard]] Stats operator-(const Stats& other) const noexcept {
      return {hits - other.hits,
              misses - other.misses,
              eigensolves - other.eigensolves,
              mincut_sweeps - other.mincut_sweeps,
              topo_computes - other.topo_computes,
              memsim_runs - other.memsim_runs,
              partition_runs - other.partition_runs,
              component_hits - other.component_hits,
              subgraph_extractions - other.subgraph_extractions,
              fingerprint_computes - other.fingerprint_computes,
              warm_hits - other.warm_hits,
              warm_iterations_saved - other.warm_iterations_saved,
              fingerprint_seconds - other.fingerprint_seconds,
              extract_seconds - other.extract_seconds,
              solve_seconds - other.solve_seconds,
              merge_seconds - other.merge_seconds};
    }
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// The content-addressed artifact store this cache resolves against
  /// (shared with the owning Engine, or private).
  [[nodiscard]] const std::shared_ptr<store::ArtifactStore>&
  artifact_store() const noexcept {
    return store_;
  }

  /// Eigensolve count for one Laplacian kind (test hook for the
  /// computed-exactly-once guarantee).
  [[nodiscard]] std::int64_t eigensolves(LaplacianKind kind) const noexcept;

  /// Every spectrum artifact currently cached, by Laplacian kind — const
  /// introspection for the provenance layer; never computes.
  [[nodiscard]] const std::map<LaplacianKind, SpectrumArtifact>&
  cached_spectra() const noexcept {
    return spectra_;
  }

  /// One pipeline run performed by spectrum() — the adaptive-h loop can
  /// run several per evaluation, each replacing the cached artifact, so
  /// the per-run log (not the final artifact) is what reconciles against
  /// the solver registry counters. The engine brackets
  /// spectrum_runs().size() around an evaluation to attribute runs to it.
  struct SpectrumRun {
    LaplacianKind kind = LaplacianKind::kOutDegreeNormalized;
    int requested = 0;
    std::int64_t merged_values = 0;
    std::vector<ComponentSolve> per_component;
  };
  [[nodiscard]] const std::vector<SpectrumRun>& spectrum_runs()
      const noexcept {
    return spectrum_runs_;
  }
  /// Monotonic tick bumped on every spectrum() request (hit or compute);
  /// artifacts record the tick they were touched/computed at, so
  /// bracketing this value identifies the spectra one evaluation used.
  [[nodiscard]] std::uint64_t spectrum_touch_serial() const noexcept {
    return spectrum_touches_;
  }

 private:
  /// The cached decomposition behind every per-component artifact:
  /// computed once per graph (all artifact kinds and option groups share
  /// it), either from a seed (zero work) or by one BFS. Fingerprints fill
  /// in lazily — at most once per component for the cache's lifetime.
  struct Decomposition {
    WeakComponents wc;
    std::vector<std::int64_t> edges;         ///< per component
    std::vector<std::uint64_t> fingerprints; ///< valid where known
    std::vector<bool> known;
    /// Pre-sort position of each component in the caller's seed — the
    /// index LazyGraph::component expects (empty for unseeded caches).
    std::vector<int> source_index;
    /// Session-stable external ids per component (seeded caches only;
    /// inner vectors may be empty) — the eigenbasis row-remap key.
    std::vector<std::vector<VertexId>> external_ids;
    /// Pre-patch predecessor fingerprints per component (0 = none).
    std::vector<std::uint64_t> predecessors;
    std::vector<bool> has_predecessor;
  };
  Decomposition& decomposition();
  /// The lookup-then-extract plan for one spectrum query (monolithic
  /// single-entry plan when options.decompose is off).
  ComponentPlan build_plan(const SpectralOptions& options);
  /// The content fingerprint of component c, computed (and counted) on
  /// first use.
  std::uint64_t component_fingerprint(int c);
  /// Extracts component c's subgraph (counted). For single-component
  /// materialized graphs callers should use graph() in place instead.
  Digraph component_subgraph(int c);

  Digraph graph_;
  bool materialized_ = true;
  std::optional<LazyGraph> lazy_;
  std::shared_ptr<store::ArtifactStore> store_;
  std::optional<ComponentSeed> seed_;
  std::optional<Decomposition> decomp_;
  Stats stats_;
  std::optional<std::uint64_t> fingerprint_;
  std::optional<std::vector<VertexId>> topo_;
  std::map<LaplacianKind, la::CsrMatrix> laplacians_;
  std::map<LaplacianKind, SpectrumArtifact> spectra_;
  std::map<LaplacianKind, SpectralOptions> spectra_options_;
  std::uint64_t spectrum_touches_ = 0;
  std::vector<SpectrumRun> spectrum_runs_;
  std::map<LaplacianKind, std::int64_t> eigensolves_by_kind_;
  std::map<flow::FlowEngine, WavefrontArtifact> max_cuts_;
  std::map<std::pair<std::int64_t, int>, MemsimArtifact> memsims_;
  std::map<double, PartitionArtifact> partitions_;
};

}  // namespace graphio::engine
