// BoundRequest — one unit of analysis work for the Engine: a graph, a
// memory sweep, a processor count, a method set, and per-method options.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graphio/core/spectral_bound.hpp"
#include "graphio/exact/pebble_search.hpp"
#include "graphio/flow/convex_mincut.hpp"
#include "graphio/graph/digraph.hpp"

namespace graphio::engine {

struct BoundRequest {
  /// Graph family/file spec (see graph_spec.hpp). Ignored when `graph` is
  /// set, except as a display name and as family metadata for the
  /// closed-form method.
  std::string spec;
  /// Explicit graph; takes precedence over `spec`. Requests carrying an
  /// explicit graph are evaluated against a private cache.
  std::optional<Digraph> graph;
  /// Display label; defaults to `spec` (or "<graph>").
  std::string name;

  /// Fast-memory sizes to evaluate (the M sweep). Must be non-empty.
  std::vector<double> memories;
  /// Processor count for the Theorem 6 ("parallel") method.
  std::int64_t processors = 1;
  /// Method ids (see engine::methods()). Empty, or containing "all",
  /// selects every registered method.
  std::vector<std::string> methods;

  // Per-method options, passed through verbatim.
  SpectralOptions spectral;
  flow::ConvexMinCutOptions mincut;
  exact::ExactOptions exact;
  /// Random schedules sampled by the "memsim" upper bound.
  int sim_random_orders = 4;

  [[nodiscard]] std::string display_name() const {
    if (!name.empty()) return name;
    if (!spec.empty()) return spec;
    return "<graph>";
  }
};

}  // namespace graphio::engine
