// Textual graph specifications — the shared grammar of the CLI, benches,
// and Engine requests.
//
// A spec is either a family descriptor `family[:arg[:arg...]]` covering
// every builder in graph/builders.hpp, or a path to a graph file — a
// graphio-edgelist document, or Graphviz DOT when the extension is .dot
// or .gv. Centralizing the grammar here means the CLI, the Engine, and
// any batch driver resolve graphs identically, and methods that need
// family structure (the Section 5 closed forms) can recover it from the
// spec instead of re-deriving it from the graph.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graphio/graph/digraph.hpp"

namespace graphio::engine {

struct GraphSpec {
  /// The original spec text ("fft:8", "runs/my_graph.gel").
  std::string text;
  /// Family name ("fft", "bhk", ...) or "file" for edge-list paths.
  std::string family;
  /// Raw arguments after the family name (the path, for "file").
  std::vector<std::string> params;

  /// Parses a family spec or file path. A spec naming an existing file is
  /// always treated as a file. Throws contract_error on an unknown family
  /// or malformed arguments.
  static GraphSpec parse(const std::string& text);

  /// As parse(), but returns nullopt instead of throwing — used to probe
  /// whether a display name doubles as a spec (analytic closed forms).
  static std::optional<GraphSpec> try_parse(const std::string& text);

  /// Builds (family) or loads (file) the graph. Throws on I/O errors.
  [[nodiscard]] Digraph build() const;

  /// Integer / double parameter accessors (bounds-checked, throwing).
  [[nodiscard]] std::int64_t int_param(std::size_t i) const;
  [[nodiscard]] double double_param(std::size_t i) const;
};

/// One-line-per-family help text for CLI usage screens.
std::string family_help();

}  // namespace graphio::engine
