// ComponentSpectrumCache — process-lifetime cache of per-component
// spectra, keyed by component content fingerprint.
//
// The spectral pipeline (core/spectral_pipeline.hpp) eigensolves one
// weakly connected component at a time; components are content-addressed
// (engine/fingerprint.hpp), so equal subprograms — the same FFT stage
// appearing in many specs of a batch, every copy inside one disjoint
// multi-program graph, the same graph re-analyzed across an M-sweep —
// resolve to one cache entry and eigensolve exactly once per process.
// One instance is shared by every ArtifactCache of an Engine (including
// the private per-request caches of the parallel batch path) and by
// every worker Engine of a serve Scheduler, which is why lookups are
// mutex-guarded and results are returned by value.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "graphio/core/spectral_pipeline.hpp"
#include "graphio/graph/laplacian.hpp"

namespace graphio::engine {

class ComponentSpectrumCache {
 public:
  /// The cached solve for (fingerprint, kind) when it was computed with
  /// equivalent solver options and at least `count` requested values —
  /// same hit rule as ArtifactCache::spectrum: a non-converged solve is
  /// still a hit for its requested count (re-running an identical failing
  /// solve helps nobody). Values are truncated to the `count` smallest:
  /// on the dense tier that is bit-identical to a fresh solve for
  /// `count`; on the sparse tiers the prefix of the larger certified run
  /// can differ from a fresh smaller run within solver tolerance — both
  /// are sound certified lower estimates, and requests using equal
  /// `count` (every serve/CLI workload) see one deterministic answer
  /// regardless of population order. Thread-safe; counts a hit or miss.
  std::optional<ComponentSolve> lookup(std::uint64_t fingerprint,
                                       LaplacianKind kind, int count,
                                       const SpectralOptions& options);

  /// Records a solve computed for `requested` values. Distinct solver
  /// options coexist as separate entries (a mixed-configuration batch
  /// must not thrash); within one options group, whichever of the
  /// existing and new entry answers more requests wins (ties keep the
  /// existing entry). Thread-safe.
  void store(std::uint64_t fingerprint, LaplacianKind kind, int requested,
             const SpectralOptions& options, const ComponentSolve& solve);

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t entries = 0;
    std::int64_t evicted = 0;  ///< entries dropped by erase()
  };
  [[nodiscard]] Stats stats() const;

  /// Drops every entry cached for one component fingerprint (all
  /// Laplacian kinds, all solver-options groups); returns how many
  /// entries went. The stream subsystem calls this when the last
  /// component with that content disappears from a session, so a
  /// long-lived mutation stream cannot grow the cache without bound.
  /// Thread-safe.
  std::int64_t erase(std::uint64_t fingerprint);

  /// Drops every entry (counters are kept).
  void clear();

 private:
  struct Entry {
    ComponentSolve solve;
    int requested = 0;
    SpectralOptions options;
  };

  mutable std::mutex mutex_;
  /// One slot per distinct solver-options group under each
  /// (fingerprint, kind) — the group count is bounded by the distinct
  /// configurations a workload actually uses.
  std::map<std::pair<std::uint64_t, LaplacianKind>, std::vector<Entry>>
      entries_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evicted_ = 0;
};

}  // namespace graphio::engine
