#include "graphio/engine/report.hpp"

#include <cmath>

namespace graphio::engine {

namespace {

void append_row_json(io::JsonWriter& w, const MethodRow& row,
                     bool include_timing) {
  w.begin_object();
  w.key("method").value(row.method);
  w.key("memory").value(row.memory);
  if (row.processors != 1) w.key("processors").value(row.processors);
  w.key("kind").value(to_string(row.kind));
  w.key("applicable").value(row.applicable);
  if (row.applicable) {
    w.key("bound").value(row.value);
    if (row.best_k != 0) w.key("best_k").value(row.best_k);
    w.key("converged").value(row.converged);
    // Only-when-true keeps fault-free outputs byte-identical.
    if (row.degraded) w.key("degraded").value(true);
  }
  if (include_timing) w.key("seconds").value(row.seconds);
  if (!row.note.empty()) w.key("note").value(row.note);
  w.end_object();
}

std::vector<std::string> row_cells(const MethodRow& row, bool with_graph,
                                   const std::string& graph) {
  std::vector<std::string> cells;
  if (with_graph) cells.push_back(graph);
  cells.push_back(row.method);
  cells.push_back(format_double(row.memory, 0));
  cells.push_back(std::string(to_string(row.kind)));
  cells.push_back(row.applicable ? format_double(row.value, 3)
                                 : std::string("-"));
  cells.push_back(row.note);
  cells.push_back(row.converged ? "yes" : "NO");
  cells.push_back(format_double(row.seconds, 3));
  return cells;
}

}  // namespace

std::vector<const MethodRow*> BoundReport::rows_for(
    std::string_view method) const {
  std::vector<const MethodRow*> out;
  for (const MethodRow& row : rows)
    if (row.method == method) out.push_back(&row);
  return out;
}

const MethodRow* BoundReport::row(std::string_view method,
                                  double memory) const {
  for (const MethodRow& r : rows)
    if (r.method == method && r.memory == memory) return &r;
  return nullptr;
}

void BoundReport::append_json(io::JsonWriter& w, bool include_timing,
                              bool include_provenance) const {
  w.begin_object();
  w.key("graph").begin_object();
  w.key("name").value(graph);
  w.key("vertices").value(vertices);
  w.key("edges").value(edges);
  w.end_object();
  w.key("processors").value(processors);
  w.key("memories").begin_array();
  for (double m : memories) w.value(m);
  w.end_array();
  if (include_timing) {
    w.key("cache").begin_object();
    w.key("hits").value(cache.hits);
    w.key("misses").value(cache.misses);
    w.key("eigensolves").value(cache.eigensolves);
    w.key("mincut_sweeps").value(cache.mincut_sweeps);
    w.key("topo_computes").value(cache.topo_computes);
    w.key("memsim_runs").value(cache.memsim_runs);
    w.key("partition_runs").value(cache.partition_runs);
    w.key("component_hits").value(cache.component_hits);
    w.key("subgraph_extractions").value(cache.subgraph_extractions);
    w.key("fingerprint_computes").value(cache.fingerprint_computes);
    w.key("warm_hits").value(cache.warm_hits);
    w.key("warm_iterations_saved").value(cache.warm_iterations_saved);
    w.key("phase_seconds").begin_object();
    w.key("fingerprint").value(cache.fingerprint_seconds);
    w.key("extract").value(cache.extract_seconds);
    w.key("solve").value(cache.solve_seconds);
    w.key("merge").value(cache.merge_seconds);
    w.end_object();
    w.end_object();
    w.key("seconds").value(seconds);
  }
  w.key("rows").begin_array();
  for (const MethodRow& row : rows) append_row_json(w, row, include_timing);
  w.end_array();
  if (include_provenance) {
    w.key("provenance");
    provenance.append_json(w);
  }
  w.end_object();
}

std::string BoundReport::to_json() const {
  io::JsonWriter w;
  append_json(w);
  return w.str();
}

Table BoundReport::to_table() const {
  Table t({"method", "M", "kind", "bound", "detail", "conv", "seconds"});
  for (const MethodRow& row : rows)
    t.add_row(row_cells(row, /*with_graph=*/false, graph));
  return t;
}

std::string reports_to_json(std::span<const BoundReport> reports) {
  io::JsonWriter w;
  w.begin_array();
  for (const BoundReport& report : reports) report.append_json(w);
  w.end_array();
  return w.str();
}

Table reports_to_table(std::span<const BoundReport> reports) {
  Table t({"graph", "method", "M", "kind", "bound", "detail", "conv",
           "seconds"});
  for (const BoundReport& report : reports)
    for (const MethodRow& row : report.rows)
      t.add_row(row_cells(row, /*with_graph=*/true, report.graph));
  return t;
}

}  // namespace graphio::engine
