#include "graphio/engine/graph_spec.hpp"

#include <cctype>
#include <charconv>
#include <filesystem>

#include "graphio/graph/builders.hpp"
#include "graphio/graph/components.hpp"
#include "graphio/graph/dot.hpp"
#include "graphio/io/edgelist.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::engine {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto end = s.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::int64_t parse_int(const std::string& s, const std::string& context) {
  std::int64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  GIO_EXPECTS_MSG(ec == std::errc() && p == s.data() + s.size(),
                  "bad integer '" + s + "' in graph spec '" + context + "'");
  return v;
}

double parse_double(const std::string& s, const std::string& context) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    GIO_EXPECTS_MSG(used == s.size(), "trailing characters");
    return v;
  } catch (const contract_error&) {
    throw;
  } catch (const std::exception&) {
    GIO_EXPECTS_MSG(false,
                    "bad number '" + s + "' in graph spec '" + context + "'");
  }
  return 0.0;  // unreachable
}

struct Family {
  const char* name;
  int min_params;
  int max_params;
  const char* help;
};

constexpr Family kFamilies[] = {
    {"fft", 1, 1, "fft:L              2^L-point FFT butterfly"},
    {"matmul", 1, 2, "matmul:N[:red]     naive N*N matmul (red: nary|chain|tree)"},
    {"strassen", 1, 1, "strassen:N         Strassen N*N matmul (N a power of 2)"},
    {"bhk", 1, 1, "bhk:L              Bellman-Held-Karp hypercube, L cities"},
    {"er", 3, 3, "er:N:P:SEED        Erdos-Renyi DAG G(N, P)"},
    {"grid", 2, 2, "grid:R:C           R*C grid with right/down edges"},
    {"tree", 1, 1, "tree:D             binary reduction tree of depth D"},
    {"path", 1, 1, "path:N             directed path on N vertices"},
    {"inner", 1, 1, "inner:M            inner product of length-M vectors"},
    {"stencil1d", 2, 2, "stencil1d:C:T      3-point stencil, C cells, T steps"},
    {"stencil2d", 3, 3, "stencil2d:R:C:T    5-point stencil, R*C cells, T steps"},
    {"scan", 1, 1, "scan:LOGN          Blelloch prefix scan on 2^LOGN inputs"},
    {"bitonic", 1, 1, "bitonic:LOGN       bitonic sort on 2^LOGN wires"},
    {"trisolve", 1, 1, "trisolve:N         triangular solve, N*N system"},
    {"cholesky", 1, 1, "cholesky:N         dense Cholesky, N*N matrix"},
    // max_params 9 bounds the inner spec's own parameter list.
    {"multi", 2, 9, "multi:C:SPEC       C disjoint copies of SPEC"},
};

const Family* find_family(const std::string& name) {
  for (const Family& f : kFamilies)
    if (name == f.name) return &f;
  return nullptr;
}

}  // namespace

GraphSpec GraphSpec::parse(const std::string& text) {
  GIO_EXPECTS_MSG(!text.empty(), "empty graph spec");
  GraphSpec spec;
  spec.text = text;
  if (std::filesystem::exists(text)) {
    spec.family = "file";
    spec.params = {text};
    return spec;
  }
  auto parts = split(text, ':');
  spec.family = parts[0];
  spec.params.assign(parts.begin() + 1, parts.end());
  const Family* family = find_family(spec.family);
  GIO_EXPECTS_MSG(family != nullptr,
                  "unknown graph '" + text +
                      "' (not a family spec or existing file)");
  const int got = static_cast<int>(spec.params.size());
  GIO_EXPECTS_MSG(got >= family->min_params && got <= family->max_params,
                  "family spec '" + text + "' takes " +
                      std::to_string(family->min_params) +
                      (family->min_params == family->max_params
                           ? ""
                           : ".." + std::to_string(family->max_params)) +
                      " argument(s)");
  return spec;
}

std::optional<GraphSpec> GraphSpec::try_parse(const std::string& text) {
  try {
    return parse(text);
  } catch (const contract_error&) {
    return std::nullopt;
  }
}

std::int64_t GraphSpec::int_param(std::size_t i) const {
  GIO_EXPECTS_MSG(i < params.size(), "spec '" + text + "': missing argument");
  return parse_int(params[i], text);
}

double GraphSpec::double_param(std::size_t i) const {
  GIO_EXPECTS_MSG(i < params.size(), "spec '" + text + "': missing argument");
  return parse_double(params[i], text);
}

namespace {

bool has_dot_extension(const std::string& path) {
  std::string ext = std::filesystem::path(path).extension().string();
  for (char& c : ext) c = static_cast<char>(std::tolower(c));
  return ext == ".dot" || ext == ".gv";
}

}  // namespace

Digraph GraphSpec::build() const {
  if (family == "file") {
    // Dispatch on extension: Graphviz DOT for *.dot / *.gv, the native
    // edgelist format otherwise.
    if (has_dot_extension(params.at(0))) return load_dot(params.at(0));
    return io::load_edgelist(params.at(0));
  }
  if (family == "fft") return builders::fft(static_cast<int>(int_param(0)));
  if (family == "matmul") {
    builders::Reduction red = builders::Reduction::kNary;
    if (params.size() > 1) {
      if (params[1] == "nary") red = builders::Reduction::kNary;
      else if (params[1] == "chain") red = builders::Reduction::kChain;
      else if (params[1] == "tree") red = builders::Reduction::kBinaryTree;
      else GIO_EXPECTS_MSG(false, "unknown reduction '" + params[1] + "'");
    }
    return builders::naive_matmul(static_cast<int>(int_param(0)), red);
  }
  if (family == "strassen")
    return builders::strassen_matmul(static_cast<int>(int_param(0)));
  if (family == "bhk")
    return builders::bhk_hypercube(static_cast<int>(int_param(0)));
  if (family == "er")
    return builders::erdos_renyi_dag(
        int_param(0), double_param(1),
        static_cast<std::uint64_t>(int_param(2)));
  if (family == "grid")
    return builders::grid(static_cast<int>(int_param(0)),
                          static_cast<int>(int_param(1)));
  if (family == "tree")
    return builders::binary_tree(static_cast<int>(int_param(0)));
  if (family == "path") return builders::path(int_param(0));
  if (family == "inner")
    return builders::inner_product(static_cast<int>(int_param(0)));
  if (family == "stencil1d")
    return builders::stencil1d(static_cast<int>(int_param(0)),
                               static_cast<int>(int_param(1)));
  if (family == "stencil2d")
    return builders::stencil2d(static_cast<int>(int_param(0)),
                               static_cast<int>(int_param(1)),
                               static_cast<int>(int_param(2)));
  if (family == "scan")
    return builders::prefix_scan(static_cast<int>(int_param(0)));
  if (family == "bitonic")
    return builders::bitonic_sort(static_cast<int>(int_param(0)));
  if (family == "trisolve")
    return builders::triangular_solve(static_cast<int>(int_param(0)));
  if (family == "cholesky")
    return builders::cholesky(static_cast<int>(int_param(0)));
  if (family == "multi") {
    // multi:C:SPEC — C disjoint copies of the (re-joined) inner spec, the
    // disjoint multi-program workload of the spectral pipeline.
    const std::int64_t copies = int_param(0);
    GIO_EXPECTS_MSG(copies >= 1 && copies <= 4096,
                    "spec '" + text + "': copy count out of range");
    std::string inner_text;
    for (std::size_t i = 1; i < params.size(); ++i) {
      if (!inner_text.empty()) inner_text += ':';
      inner_text += params[i];
    }
    return disjoint_copies(parse(inner_text).build(), copies);
  }
  GIO_EXPECTS_MSG(false, "unknown graph family '" + family + "'");
  return Digraph{};  // unreachable
}

std::string family_help() {
  std::string out;
  for (const Family& f : kFamilies) {
    out += "  ";
    out += f.help;
    out += '\n';
  }
  return out;
}

}  // namespace graphio::engine
