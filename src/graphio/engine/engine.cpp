#include "graphio/engine/engine.hpp"

#include <utility>

#include "graphio/engine/graph_spec.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/parallel.hpp"
#include "graphio/support/timer.hpp"
#include "graphio/telemetry/metrics.hpp"
#include "graphio/telemetry/trace.hpp"

namespace graphio::engine {

namespace {

const char* laplacian_provenance_name(LaplacianKind kind) {
  return kind == LaplacianKind::kPlain ? "plain" : "norm";
}

/// Fills report.provenance from the evaluation's bracketed state: the
/// pipeline runs performed (computed spectra, reconciled against the
/// registry deltas), the artifacts served without re-running, and the
/// final rows. Deterministic: run order, then kind order, no wall-clock.
void assemble_provenance(BoundReport& report, ArtifactCache& cache,
                         std::size_t runs_before,
                         std::uint64_t serial_before,
                         std::int64_t warm_delta, std::int64_t iter_delta) {
  audit::ProvenanceRecord& prov = report.provenance;
  prov.kind = "bound";
  prov.graph = report.graph;
  prov.registry.warm_hits = warm_delta;
  prov.registry.iterations = iter_delta;
  const std::vector<ArtifactCache::SpectrumRun>& runs = cache.spectrum_runs();
  for (std::size_t i = runs_before; i < runs.size(); ++i) {
    const ArtifactCache::SpectrumRun& run = runs[i];
    audit::SpectrumProvenance sp;
    sp.laplacian = laplacian_provenance_name(run.kind);
    sp.requested = run.requested;
    sp.computed = true;
    sp.merged_values = run.merged_values;
    sp.components.reserve(run.per_component.size());
    for (const ComponentSolve& solve : run.per_component)
      sp.components.push_back(audit::component_provenance(solve));
    prov.spectra.push_back(std::move(sp));
  }
  for (const auto& [kind, artifact] : cache.cached_spectra()) {
    if (artifact.touched_serial <= serial_before) continue;  // unused here
    if (artifact.computed_serial > serial_before) continue;  // in runs above
    audit::SpectrumProvenance sp;
    sp.laplacian = laplacian_provenance_name(kind);
    sp.requested = artifact.requested;
    sp.computed = false;
    sp.merged_values = static_cast<std::int64_t>(artifact.values.size());
    sp.components.reserve(artifact.per_component.size());
    for (const ComponentSolve& solve : artifact.per_component)
      sp.components.push_back(audit::component_provenance(solve));
    prov.spectra.push_back(std::move(sp));
  }
  prov.rows.reserve(report.rows.size());
  for (const MethodRow& row : report.rows) {
    audit::RowLineage lineage;
    lineage.method = row.method;
    lineage.memory = row.memory;
    lineage.processors = row.processors;
    lineage.applicable = row.applicable;
    lineage.bound = row.value;
    lineage.best_k = row.best_k;
    lineage.converged = row.converged;
    lineage.degraded = row.degraded;
    prov.rows.push_back(std::move(lineage));
  }
}

}  // namespace

BoundReport Engine::evaluate_with_cache(const BoundRequest& request,
                                        ArtifactCache& cache) {
  GIO_EXPECTS_MSG(!request.memories.empty(),
                  "request needs at least one memory size");
  for (double m : request.memories)
    GIO_EXPECTS_MSG(m >= 0.0, "memory size must be non-negative");
  GIO_EXPECTS(request.processors >= 1);
  const std::vector<const BoundMethod*> selected = select_methods(request);

  WallTimer timer;
  const ArtifactCache::Stats before = cache.stats();
  // Provenance bracket: registry counters (process-wide — the record's
  // `exclusive` flag says whether the deltas are attributable solely to
  // this evaluation) and the cache's spectrum run/touch serials.
  struct SolverCounters {
    telemetry::Counter& warm_hits;
    telemetry::Counter& iterations;
  };
  static SolverCounters solver_counters{
      telemetry::MetricsRegistry::global().counter("solver.warm_hits"),
      telemetry::MetricsRegistry::global().counter("solver.iterations")};
  const std::int64_t warm_before = solver_counters.warm_hits.value();
  const std::int64_t iter_before = solver_counters.iterations.value();
  const std::size_t runs_before = cache.spectrum_runs().size();
  const std::uint64_t serial_before = cache.spectrum_touch_serial();

  BoundReport report;
  report.graph = request.display_name();
  report.vertices = cache.num_vertices();
  report.edges = cache.num_edges();
  report.processors = request.processors;
  report.memories = request.memories;

  // Family metadata for the closed-form method: the spec, or a spec-shaped
  // display name attached to an explicit graph.
  std::optional<GraphSpec> spec;
  if (!request.spec.empty()) spec = GraphSpec::try_parse(request.spec);
  else if (!request.name.empty()) spec = GraphSpec::try_parse(request.name);

  MethodContext ctx{cache, request, spec.has_value() ? &*spec : nullptr};
  for (const BoundMethod* method : selected) {
    telemetry::Span method_span("engine.method");
    method_span.attr("method", method->id())
        .attr("graph", report.graph)
        .attr("memories", request.memories.size());
    std::vector<MethodRow> rows;
    try {
      rows = method->evaluate(ctx, request.memories);
    } catch (const std::exception& e) {
      // A method must never sink the whole report; surface the failure as
      // inapplicable rows instead. converged=false distinguishes "threw"
      // (possibly transient) from a method's own deterministic
      // inapplicability verdict — the serve ResultStore only persists
      // converged rows.
      rows.clear();
      for (double m : request.memories) {
        MethodRow row;
        row.method = std::string(method->id());
        row.memory = m;
        row.kind = method->kind();
        row.applicable = false;
        row.converged = false;
        row.note = e.what();
        rows.push_back(std::move(row));
      }
    }
    report.rows.insert(report.rows.end(),
                       std::make_move_iterator(rows.begin()),
                       std::make_move_iterator(rows.end()));
  }

  report.cache = cache.stats() - before;
  assemble_provenance(report, cache, runs_before, serial_before,
                      solver_counters.warm_hits.value() - warm_before,
                      solver_counters.iterations.value() - iter_before);
  report.seconds = timer.seconds();
  return report;
}

ArtifactCache& Engine::ensure_cache(const std::string& spec) {
  GIO_EXPECTS_MSG(!spec.empty(),
                  "request needs a graph spec or an explicit graph");
  auto it = caches_.find(spec);
  if (it == caches_.end()) {
    it = caches_
             .emplace(spec, std::make_unique<ArtifactCache>(
                                GraphSpec::parse(spec).build(), store_))
             .first;
  }
  return *it->second;
}

BoundReport Engine::evaluate(const BoundRequest& request) {
  if (request.graph.has_value()) {
    // Explicit graphs get a private artifact cache (the Engine cannot
    // tell whether two Digraph values are the same computation), but
    // share the artifact store — content addressing makes that safe and
    // lets explicit graphs reuse spec-built component artifacts.
    ArtifactCache cache(*request.graph, store_);
    return evaluate_with_cache(request, cache);
  }
  return evaluate_with_cache(request, ensure_cache(request.spec));
}

const Digraph& Engine::graph(const std::string& spec) {
  return ensure_cache(spec).graph();
}

void Engine::install_graph(const std::string& name, Digraph graph,
                           std::optional<ComponentSeed> seed) {
  GIO_EXPECTS_MSG(!name.empty(), "installed graph needs a name");
  GIO_EXPECTS_MSG(!GraphSpec::try_parse(name).has_value(),
                  "installed graph name '" + name +
                      "' collides with a family spec or graph file");
  retire_cache_stats(name);
  caches_.insert_or_assign(
      name, std::make_unique<ArtifactCache>(std::move(graph), store_,
                                            std::move(seed)));
}

void Engine::install_graph(const std::string& name, LazyGraph graph,
                           ComponentSeed seed) {
  GIO_EXPECTS_MSG(!name.empty(), "installed graph needs a name");
  GIO_EXPECTS_MSG(!GraphSpec::try_parse(name).has_value(),
                  "installed graph name '" + name +
                      "' collides with a family spec or graph file");
  retire_cache_stats(name);
  caches_.insert_or_assign(
      name, std::make_unique<ArtifactCache>(std::move(graph), store_,
                                            std::move(seed)));
}

void Engine::retire_cache_stats(const std::string& name) {
  const auto it = caches_.find(name);
  if (it != caches_.end()) retired_ += it->second->stats();
}

std::uint64_t Engine::fingerprint(const std::string& spec) {
  return ensure_cache(spec).fingerprint();
}

ArtifactCache::Stats Engine::stats() const {
  ArtifactCache::Stats total = retired_;
  for (const auto& [spec, cache] : caches_) total += cache->stats();
  return total;
}

std::vector<BoundReport> Engine::evaluate_batch(
    std::span<const BoundRequest> requests, bool parallel) {
  std::vector<BoundReport> reports(requests.size());
  if (!parallel) {
    for (std::size_t i = 0; i < requests.size(); ++i)
      reports[i] = evaluate(requests[i]);
    return reports;
  }
  // Parallel path: private caches per request keep the fan-out race-free
  // without locking the persistent cache map.
  std::vector<std::string> errors(requests.size());
  parallel_for_dynamic(static_cast<std::int64_t>(requests.size()),
                       [&](std::int64_t i) {
                         const BoundRequest& request =
                             requests[static_cast<std::size_t>(i)];
                         try {
                           Digraph g = request.graph.has_value()
                                           ? *request.graph
                                           : GraphSpec::parse(request.spec)
                                                 .build();
                           ArtifactCache cache(std::move(g), store_);
                           reports[static_cast<std::size_t>(i)] =
                               evaluate_with_cache(request, cache);
                         } catch (const std::exception& e) {
                           errors[static_cast<std::size_t>(i)] = e.what();
                         }
                       });
  for (std::size_t i = 0; i < requests.size(); ++i)
    GIO_EXPECTS_MSG(errors[i].empty(), "request '" +
                                           requests[i].display_name() +
                                           "' failed: " + errors[i]);
  // Concurrent evaluations interleave their updates to the process-wide
  // solver counters, so no parallel report's registry delta is
  // attributable to it alone.
  for (BoundReport& report : reports)
    report.provenance.registry.exclusive = false;
  return reports;
}

const ArtifactCache* Engine::cache(const std::string& spec) const {
  const auto it = caches_.find(spec);
  return it == caches_.end() ? nullptr : it->second.get();
}

void Engine::clear() {
  for (const auto& [spec, cache] : caches_) retired_ += cache->stats();
  caches_.clear();
  store_->clear();
}

}  // namespace graphio::engine
