// Engine — the unified front door to every bound/estimate in the library.
//
//   engine::Engine eng;
//   engine::BoundRequest req;
//   req.spec = "fft:8";
//   req.memories = {4, 8, 16};
//   req.methods = {"all"};
//   engine::BoundReport report = eng.evaluate(req);
//   std::cout << report.to_json() << "\n";
//
// The Engine owns one ArtifactCache per spec-addressed graph, so the
// expensive shared artifacts — topological orders, Laplacians,
// eigen-spectra, wavefront cut sweeps — are computed once and reused
// across every method, every M of a sweep, and every later request for
// the same spec. Batch evaluation over multiple graphs fans out through
// support/parallel.hpp.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graphio/engine/artifact_cache.hpp"
#include "graphio/engine/report.hpp"
#include "graphio/engine/request.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::engine {

class Engine {
 public:
  Engine() = default;

  /// Shares an existing content-addressed artifact store instead of
  /// owning a private (memory-only) one — the serve scheduler hands one
  /// instance to every worker Engine, so a component shared across specs
  /// computes each artifact once per process even when the specs shard to
  /// different workers; with a disk tier attached, once ever. The store
  /// is mutex-guarded; everything else about the Engines stays
  /// independent.
  explicit Engine(std::shared_ptr<store::ArtifactStore> store)
      : store_(std::move(store)) {
    GIO_EXPECTS_MSG(store_ != nullptr,
                    "shared artifact store must not be null");
  }

  /// Evaluates one request: resolves the graph (building it on first use
  /// of a spec), runs every selected method over the memory sweep, and
  /// returns the structured report. Throws contract_error on malformed
  /// requests (unknown method id, empty sweep, unresolvable spec);
  /// per-method failures are reported as inapplicable rows, not thrown.
  BoundReport evaluate(const BoundRequest& request);

  /// Evaluates many requests, fanning out through support/parallel.hpp.
  /// Each parallel request uses a private ArtifactCache (the persistent
  /// per-spec caches are only read by the serial path), so results match
  /// sequential evaluation exactly.
  std::vector<BoundReport> evaluate_batch(
      std::span<const BoundRequest> requests, bool parallel = true);

  /// Builds (or fetches from cache) the graph a spec resolves to without
  /// evaluating anything — for callers that need structural facts (vertex
  /// count, degrees) before shaping a request.
  const Digraph& graph(const std::string& spec);

  /// Registers (or replaces) `name` as an explicit graph: later requests
  /// whose spec equals `name` evaluate against it with a persistent
  /// ArtifactCache, exactly like a family spec. Replacing drops the old
  /// cache's whole-graph artifacts (they describe a graph that no longer
  /// exists) while per-component artifacts survive in the shared
  /// content-addressed artifact store — the invalidation granularity the
  /// stream subsystem relies on. The name must not itself parse as a
  /// family spec or name an existing graph file (a later plain request
  /// for that spec would silently read the installed graph instead).
  /// A `seed` (engine/artifact_cache.hpp) pre-installs the component
  /// decomposition and per-component fingerprints, so artifact queries
  /// skip decomposition and re-hashing entirely — the stream session
  /// hands its incrementally-maintained membership here after every
  /// patch.
  void install_graph(const std::string& name, Digraph graph,
                     std::optional<ComponentSeed> seed = std::nullopt);

  /// As above, but with a LazyGraph: the whole graph is never
  /// materialized unless a whole-graph method (pebble-exact, monolithic
  /// spectra) actually runs — per-component artifact queries extract
  /// only the components whose fingerprints miss the store. This is the
  /// stream session's post-patch handoff.
  void install_graph(const std::string& name, LazyGraph graph,
                     ComponentSeed seed);

  /// Content fingerprint of the graph a spec resolves to (building the
  /// graph on first use, like graph()). The serve ResultStore keys disk
  /// records with this, so equal graphs share warm results regardless of
  /// how their requests spell the spec.
  std::uint64_t fingerprint(const std::string& spec);

  /// The cache backing a spec, or nullptr if that spec has not been
  /// evaluated yet (test/introspection hook).
  [[nodiscard]] const ArtifactCache* cache(const std::string& spec) const;

  /// Lifetime artifact-cache totals summed across every spec this Engine
  /// has touched — the serve layer reports these per worker and in the
  /// batch summary footer. Includes counters retired when a graph is
  /// reinstalled over an existing name (the stream session reinstalls
  /// after every patch), so totals are monotone across reinstalls.
  [[nodiscard]] ArtifactCache::Stats stats() const;

  /// The content-addressed artifact store shared by every ArtifactCache
  /// this Engine creates — spec-addressed, explicit-graph, and batch
  /// fan-out caches alike — so a component shared across specs computes
  /// each artifact kind once.
  [[nodiscard]] const std::shared_ptr<store::ArtifactStore>&
  artifact_store() const noexcept {
    return store_;
  }

  /// Drops all cached graphs and artifacts (including the store's
  /// memory tier; an attached disk tier is untouched).
  void clear();

 private:
  ArtifactCache& ensure_cache(const std::string& spec);
  BoundReport evaluate_with_cache(const BoundRequest& request,
                                  ArtifactCache& cache);

  // Folds a to-be-replaced cache's counters into retired_ so stats()
  // stays lifetime-accurate (install_graph over an existing name used to
  // zero that spec's totals).
  void retire_cache_stats(const std::string& name);

  std::shared_ptr<store::ArtifactStore> store_ =
      std::make_shared<store::ArtifactStore>();
  std::unordered_map<std::string, std::unique_ptr<ArtifactCache>> caches_;
  ArtifactCache::Stats retired_;
};

}  // namespace graphio::engine

namespace graphio {
// Headline alias: the Engine is the library's recommended entry point.
using engine::Engine;
}  // namespace graphio
