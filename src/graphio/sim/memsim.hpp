// Two-level memory execution simulator (the paper's model, Section 3).
//
// Executes a topological evaluation order on a computation graph with fast
// memory of M values and counts *non-trivial* I/O:
//   * inputs are read from the user straight into fast memory (free on
//     first touch) and outputs are reported as computed (free, and sinks
//     never occupy a slot);
//   * an evicted value that is still needed is written to slow memory once
//     (values are immutable, so clean re-evictions are free) and costs one
//     read per subsequent miss;
//   * recomputation is disallowed.
// The simulated cost of any schedule is an upper bound on J*(G): every
// lower-bound engine in the library is sandwich-tested against it.
#pragma once

#include <cstdint>
#include <vector>

#include "graphio/graph/digraph.hpp"

namespace graphio::sim {

enum class EvictionPolicy {
  kBelady,  ///< offline MIN: evict the value reused farthest in the future
  kLru,     ///< least-recently-used
};

struct SimOptions {
  EvictionPolicy policy = EvictionPolicy::kBelady;
  /// Also count trivial I/O (#sources reads + #sinks writes) in totals.
  bool count_trivial = false;
};

struct SimResult {
  std::int64_t reads = 0;        ///< non-trivial reads from slow memory
  std::int64_t writes = 0;       ///< non-trivial writes to slow memory
  std::int64_t trivial_io = 0;   ///< #sources + #sinks (reported separately)
  std::int64_t peak_resident = 0;

  [[nodiscard]] std::int64_t total() const noexcept { return reads + writes; }
};

/// Simulates `order` (must be a topological order of g) with fast memory of
/// `memory` values. Requires memory ≥ the largest number of distinct
/// operands of any vertex (the paper's feasibility rule — points with max
/// in-degree > M are not evaluated).
SimResult simulate_io(const Digraph& g, const std::vector<VertexId>& order,
                      std::int64_t memory, const SimOptions& options = {});

/// Convenience: the best (minimum total) simulated I/O across a set of
/// standard schedules (natural Kahn, DFS, locality-greedy, and
/// `random_orders` random samples) under the Belady policy. A practical
/// upper bound for J*.
SimResult best_schedule_io(const Digraph& g, std::int64_t memory,
                           int random_orders = 4,
                           std::uint64_t seed = 0xC0FFEE);

/// As best_schedule_io, but also reports the winning order (e.g. as the
/// starting point for anneal_schedule).
struct BestSchedule {
  std::vector<VertexId> order;
  SimResult result;
};
BestSchedule best_schedule(const Digraph& g, std::int64_t memory,
                           int random_orders = 4,
                           std::uint64_t seed = 0xC0FFEE);

}  // namespace graphio::sim
