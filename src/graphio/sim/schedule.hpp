// Schedule heuristics beyond the plain topological orders in graph/topo.
#pragma once

#include <vector>

#include "graphio/graph/digraph.hpp"

namespace graphio::sim {

/// Locality-greedy topological order: among ready vertices, prefer the one
/// whose operands were produced most recently (so they are still likely in
/// fast memory). Ties break toward lower vertex ids. Throws on cycles.
///
/// This is the scheduler the tightness bench uses to get practical upper
/// bounds closer to J* than arbitrary Kahn orders.
std::vector<VertexId> greedy_locality_order(const Digraph& g);

}  // namespace graphio::sim
