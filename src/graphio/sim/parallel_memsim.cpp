#include "graphio/sim/parallel_memsim.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <set>

#include "graphio/graph/topo.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/prng.hpp"

namespace graphio::sim {

namespace {

constexpr std::int64_t kNeverUsed = std::numeric_limits<std::int64_t>::max();

/// For each vertex and each processor, the ascending list of global times
/// at which that processor consumes the vertex.
std::vector<std::vector<std::vector<std::int64_t>>> build_local_use_lists(
    const Digraph& g, const std::vector<VertexId>& order,
    const std::vector<int>& assignment, int processors) {
  std::vector<std::vector<std::vector<std::int64_t>>> uses(
      static_cast<std::size_t>(g.num_vertices()),
      std::vector<std::vector<std::int64_t>>(
          static_cast<std::size_t>(processors)));
  for (std::size_t t = 0; t < order.size(); ++t) {
    const int owner = assignment[static_cast<std::size_t>(order[t])];
    for (VertexId p : g.parents(order[t]))
      uses[static_cast<std::size_t>(p)][static_cast<std::size_t>(owner)]
          .push_back(static_cast<std::int64_t>(t));
  }
  return uses;
}

}  // namespace

std::vector<int> partition_assignment(const Digraph& g,
                                      const std::vector<VertexId>& order,
                                      std::int64_t processors,
                                      PartitionStrategy strategy,
                                      std::uint64_t seed) {
  GIO_EXPECTS(processors >= 1);
  GIO_EXPECTS_MSG(is_topological(g, order),
                  "assignment requires a topological order");
  const std::int64_t n = g.num_vertices();
  std::vector<int> assignment(static_cast<std::size_t>(n), 0);
  Prng rng(seed);
  const std::int64_t block = (n + processors - 1) / std::max<std::int64_t>(
                                 processors, 1);
  for (std::size_t t = 0; t < order.size(); ++t) {
    const auto v = static_cast<std::size_t>(order[t]);
    switch (strategy) {
      case PartitionStrategy::kContiguous:
        assignment[v] =
            static_cast<int>(static_cast<std::int64_t>(t) / block);
        break;
      case PartitionStrategy::kRoundRobin:
        assignment[v] = static_cast<int>(static_cast<std::int64_t>(t) %
                                         processors);
        break;
      case PartitionStrategy::kRandom:
        assignment[v] = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(processors)));
        break;
    }
  }
  return assignment;
}

ParallelSimResult simulate_parallel_io(const Digraph& g,
                                       const std::vector<VertexId>& order,
                                       const std::vector<int>& assignment,
                                       std::int64_t memory,
                                       const SimOptions& options) {
  GIO_EXPECTS_MSG(is_topological(g, order),
                  "schedule must be a topological order of the graph");
  GIO_EXPECTS(memory >= 1);
  GIO_EXPECTS(assignment.size() == static_cast<std::size_t>(g.num_vertices()));
  int processors = 1;
  for (int owner : assignment) {
    GIO_EXPECTS_MSG(owner >= 0, "assignment entries must be non-negative");
    processors = std::max(processors, owner + 1);
  }

  const auto n = static_cast<std::size_t>(g.num_vertices());
  const auto uses = build_local_use_lists(g, order, assignment, processors);
  // Per (vertex, processor) cursor into the local use list.
  std::vector<std::vector<std::size_t>> next_use(
      n, std::vector<std::size_t>(static_cast<std::size_t>(processors), 0));
  // resident[v] is a bitmask of processors currently holding v (p ≤ 64 is
  // enforced; beyond that the mask would need widening).
  GIO_EXPECTS_MSG(processors <= 64,
                  "simulate_parallel_io supports at most 64 processors");
  std::vector<std::uint64_t> resident(n, 0);
  std::vector<char> written(n, 0);
  std::vector<std::int64_t> remaining_uses(n, 0);
  for (std::size_t v = 0; v < n; ++v)
    for (const auto& per_proc : uses[v])
      remaining_uses[v] += static_cast<std::int64_t>(per_proc.size());

  const bool belady = options.policy == EvictionPolicy::kBelady;

  struct ProcState {
    std::set<std::pair<std::int64_t, VertexId>> pool;  // (key, vertex)
    std::vector<std::int64_t> key;
    std::int64_t resident_count = 0;
  };
  std::vector<ProcState> procs(static_cast<std::size_t>(processors));
  for (auto& ps : procs) ps.key.assign(n, 0);

  ParallelSimResult result;
  result.per_processor.assign(static_cast<std::size_t>(processors), {});

  std::vector<char> pinned(n, 0);

  auto local_key = [&](std::size_t v, int proc,
                       std::int64_t now) -> std::int64_t {
    if (!belady) return now;  // LRU: last-touch time
    const auto& list = uses[v][static_cast<std::size_t>(proc)];
    const std::size_t cursor = next_use[v][static_cast<std::size_t>(proc)];
    return cursor < list.size() ? list[cursor] : kNeverUsed;
  };

  auto pool_insert = [&](int proc, VertexId v, std::int64_t k) {
    auto& ps = procs[static_cast<std::size_t>(proc)];
    ps.key[static_cast<std::size_t>(v)] = k;
    ps.pool.emplace(k, v);
  };
  auto pool_erase = [&](int proc, VertexId v) {
    auto& ps = procs[static_cast<std::size_t>(proc)];
    ps.pool.erase({ps.key[static_cast<std::size_t>(v)], v});
  };

  auto drop = [&](int proc, VertexId victim) {
    auto& ps = procs[static_cast<std::size_t>(proc)];
    const auto vi = static_cast<std::size_t>(victim);
    if (remaining_uses[vi] > 0 && !written[vi]) {
      // Live and unpersisted: the no-recomputation rule forces a write.
      written[vi] = 1;
      ++result.per_processor[static_cast<std::size_t>(proc)].writes;
    }
    resident[vi] &= ~(1ULL << proc);
    --ps.resident_count;
  };

  auto evict_one = [&](int proc) {
    auto& ps = procs[static_cast<std::size_t>(proc)];
    // Victim at the policy end of the pool, skipping pinned operands.
    if (belady) {
      for (auto it = ps.pool.rbegin(); it != ps.pool.rend(); ++it) {
        if (pinned[static_cast<std::size_t>(it->second)]) continue;
        drop(proc, it->second);
        ps.pool.erase(std::next(it).base());
        return;
      }
    } else {
      for (auto it = ps.pool.begin(); it != ps.pool.end(); ++it) {
        if (pinned[static_cast<std::size_t>(it->second)]) continue;
        drop(proc, it->second);
        ps.pool.erase(it);
        return;
      }
    }
    GIO_EXPECTS_MSG(false, "fast memory too small for the operand set");
  };

  std::vector<VertexId> distinct_parents;
  for (std::size_t t = 0; t < order.size(); ++t) {
    const VertexId v = order[t];
    const auto vi = static_cast<std::size_t>(v);
    const int me = assignment[vi];
    auto& ps = procs[static_cast<std::size_t>(me)];
    auto& io = result.per_processor[static_cast<std::size_t>(me)];
    ++io.vertices;

    distinct_parents.clear();
    for (VertexId p : g.parents(v)) {
      if (pinned[static_cast<std::size_t>(p)]) continue;
      pinned[static_cast<std::size_t>(p)] = 1;
      distinct_parents.push_back(p);
    }
    GIO_EXPECTS_MSG(
        static_cast<std::int64_t>(distinct_parents.size()) <= memory,
        "vertex has more distinct operands than fast memory");

    // Fault in missing operands.
    for (VertexId p : distinct_parents) {
      const auto pi = static_cast<std::size_t>(p);
      if ((resident[pi] >> me) & 1ULL) continue;
      ++io.reads;
      if (!written[pi]) {
        // The value lives only in some other processor's fast memory: an
        // inter-processor pull; the holder pays the send side.
        GIO_ASSERT(resident[pi] != 0);
        const int holder = std::countr_zero(resident[pi]);
        ++result.per_processor[static_cast<std::size_t>(holder)].sends;
      }
      while (ps.resident_count >= memory) evict_one(me);
      resident[pi] |= 1ULL << me;
      ++ps.resident_count;
      pool_insert(me, p, local_key(pi, me, static_cast<std::int64_t>(t)));
    }

    // Consume operands: advance local cursors, free-drop globally dead
    // values from every processor holding them.
    for (VertexId p : distinct_parents) {
      const auto pi = static_cast<std::size_t>(p);
      auto& cursor = next_use[pi][static_cast<std::size_t>(me)];
      const auto& list = uses[pi][static_cast<std::size_t>(me)];
      while (cursor < list.size() &&
             list[cursor] == static_cast<std::int64_t>(t)) {
        ++cursor;
        --remaining_uses[pi];
      }
      pool_erase(me, p);
      pinned[pi] = 0;
      if (remaining_uses[pi] == 0) {
        // Dead everywhere: every copy is dropped for free.
        std::uint64_t mask = resident[pi];
        while (mask != 0) {
          const int proc = std::countr_zero(mask);
          mask &= mask - 1;
          if (proc != me) pool_erase(proc, p);
          --procs[static_cast<std::size_t>(proc)].resident_count;
        }
        resident[pi] = 0;
      } else {
        pool_insert(me, p, local_key(pi, me, static_cast<std::int64_t>(t)));
      }
    }

    // Place the result locally; sinks are reported immediately and values
    // nobody consumes do not occupy a slot.
    if (remaining_uses[vi] > 0) {
      while (ps.resident_count >= memory) evict_one(me);
      resident[vi] |= 1ULL << me;
      ++ps.resident_count;
      pool_insert(me, v, local_key(vi, me, static_cast<std::int64_t>(t)));
    }
  }

  return result;
}

ParallelSimResult best_parallel_schedule_io(const Digraph& g,
                                            std::int64_t memory,
                                            std::int64_t processors,
                                            std::uint64_t seed) {
  // Start from the best serial schedule — contiguous blocks of a
  // low-I/O order keep most producer→consumer edges processor-local.
  const std::vector<VertexId> order = best_schedule(g, memory).order;
  ParallelSimResult best;
  bool first = true;
  for (PartitionStrategy strategy :
       {PartitionStrategy::kContiguous, PartitionStrategy::kRoundRobin,
        PartitionStrategy::kRandom}) {
    const std::vector<int> assignment =
        partition_assignment(g, order, processors, strategy, seed);
    ParallelSimResult r = simulate_parallel_io(g, order, assignment, memory);
    if (first || r.max_total() < best.max_total()) best = std::move(r);
    first = false;
  }
  return best;
}

}  // namespace graphio::sim
