// Local search over topological orders.
//
// The lower-bound engines bound J*(G) from below; the memory simulator
// turns any single schedule into an upper bound. This module closes the
// gap from above: simulated annealing over the space of topological
// orders, using dependency-legal *insertion moves* (pull one vertex to a
// new position inside the window delimited by its latest-scheduled parent
// and earliest-scheduled child — every such move preserves topological
// validity, and repeated insertions reach every topological order, so the
// search space is connected).
//
// Each candidate order is scored by sim::simulate_io under Belady
// eviction. The best order ever seen is returned, so the result can only
// improve on the starting schedule. With initial_temperature = 0 the
// search degenerates to first-improvement hill climbing.
#pragma once

#include <cstdint>
#include <vector>

#include "graphio/graph/digraph.hpp"
#include "graphio/sim/memsim.hpp"

namespace graphio::sim {

struct AnnealOptions {
  /// Total insertion moves attempted.
  std::int64_t iterations = 4000;
  /// Starting temperature as a fraction of the initial schedule's I/O
  /// (0 disables uphill moves — pure hill climbing).
  double initial_temperature = 0.05;
  /// Geometric cooling factor applied every `iterations / 100` moves.
  double cooling = 0.95;
  std::uint64_t seed = 0x5EEDC0DEULL;
  EvictionPolicy policy = EvictionPolicy::kBelady;
};

struct AnnealResult {
  /// The best topological order found.
  std::vector<VertexId> order;
  /// simulate_io(order) under the chosen policy.
  std::int64_t io = 0;
  /// I/O of the starting schedule, for reporting the improvement.
  std::int64_t start_io = 0;
  std::int64_t moves_attempted = 0;
  std::int64_t moves_accepted = 0;
};

/// Refines `start` (must be a topological order of g) by annealing.
/// `memory` must be at least the largest number of distinct operands of
/// any vertex (the simulator's feasibility requirement).
AnnealResult anneal_schedule(const Digraph& g, std::int64_t memory,
                             std::vector<VertexId> start,
                             const AnnealOptions& options = {});

/// Convenience: starts from the better of the natural Kahn and the
/// locality-greedy order, then anneals.
AnnealResult anneal_schedule(const Digraph& g, std::int64_t memory,
                             const AnnealOptions& options = {});

}  // namespace graphio::sim
