#include "graphio/sim/anneal.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graphio/graph/topo.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/prng.hpp"

namespace graphio::sim {

namespace {

// Adjacency membership with O(log deg) lookup; built once per search.
class NeighborSets {
 public:
  explicit NeighborSets(const Digraph& g) {
    parents_.resize(static_cast<std::size_t>(g.num_vertices()));
    children_.resize(static_cast<std::size_t>(g.num_vertices()));
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto p = g.parents(v);
      const auto c = g.children(v);
      parents_[static_cast<std::size_t>(v)].assign(p.begin(), p.end());
      children_[static_cast<std::size_t>(v)].assign(c.begin(), c.end());
      std::sort(parents_[static_cast<std::size_t>(v)].begin(),
                parents_[static_cast<std::size_t>(v)].end());
      std::sort(children_[static_cast<std::size_t>(v)].begin(),
                children_[static_cast<std::size_t>(v)].end());
    }
  }

  [[nodiscard]] bool is_parent(VertexId of, VertexId candidate) const {
    const auto& p = parents_[static_cast<std::size_t>(of)];
    return std::binary_search(p.begin(), p.end(), candidate);
  }
  [[nodiscard]] bool is_child(VertexId of, VertexId candidate) const {
    const auto& c = children_[static_cast<std::size_t>(of)];
    return std::binary_search(c.begin(), c.end(), candidate);
  }

 private:
  std::vector<std::vector<VertexId>> parents_;
  std::vector<std::vector<VertexId>> children_;
};

}  // namespace

AnnealResult anneal_schedule(const Digraph& g, std::int64_t memory,
                             std::vector<VertexId> start,
                             const AnnealOptions& options) {
  GIO_EXPECTS_MSG(is_topological(g, start),
                  "anneal_schedule requires a topological starting order");
  GIO_EXPECTS(options.iterations >= 0);
  GIO_EXPECTS(options.cooling > 0.0 && options.cooling <= 1.0);

  SimOptions sim_options;
  sim_options.policy = options.policy;

  AnnealResult result;
  result.start_io = simulate_io(g, start, memory, sim_options).total();
  result.order = start;
  result.io = result.start_io;

  const auto n = static_cast<std::int64_t>(start.size());
  if (n < 3 || options.iterations == 0) return result;

  const NeighborSets adjacency(g);
  Prng rng(options.seed);

  std::vector<VertexId> current = std::move(start);
  std::int64_t current_io = result.start_io;
  double temperature =
      options.initial_temperature * static_cast<double>(result.start_io);
  const std::int64_t cool_every = std::max<std::int64_t>(
      1, options.iterations / 100);

  for (std::int64_t iter = 0; iter < options.iterations; ++iter) {
    ++result.moves_attempted;

    // Pick a vertex and its legal insertion window [lo, hi] (positions at
    // which it may sit): bounded on the left by its last parent in the
    // current order and on the right by its first child.
    const auto pos = static_cast<std::int64_t>(rng.below(
        static_cast<std::uint64_t>(n)));
    const VertexId v = current[static_cast<std::size_t>(pos)];
    std::int64_t lo = pos;
    while (lo > 0 &&
           !adjacency.is_parent(v, current[static_cast<std::size_t>(lo - 1)]))
      --lo;
    std::int64_t hi = pos;
    while (hi + 1 < n &&
           !adjacency.is_child(v, current[static_cast<std::size_t>(hi + 1)]))
      ++hi;
    if (lo == hi) continue;  // v is pinned; nothing to try

    std::int64_t target = lo + static_cast<std::int64_t>(rng.below(
                                   static_cast<std::uint64_t>(hi - lo + 1)));
    if (target == pos) continue;

    // Apply the insertion (rotate keeps all other relative positions).
    if (target < pos)
      std::rotate(current.begin() + target, current.begin() + pos,
                  current.begin() + pos + 1);
    else
      std::rotate(current.begin() + pos, current.begin() + pos + 1,
                  current.begin() + target + 1);

    const std::int64_t candidate_io =
        simulate_io(g, current, memory, sim_options).total();
    const std::int64_t delta = candidate_io - current_io;
    const bool accept =
        delta <= 0 ||
        (temperature > 0.0 &&
         rng.uniform() < std::exp(-static_cast<double>(delta) / temperature));

    if (accept) {
      ++result.moves_accepted;
      current_io = candidate_io;
      if (current_io < result.io) {
        result.io = current_io;
        result.order = current;
      }
    } else {
      // Undo the insertion.
      if (target < pos)
        std::rotate(current.begin() + target, current.begin() + target + 1,
                    current.begin() + pos + 1);
      else
        std::rotate(current.begin() + pos, current.begin() + target,
                    current.begin() + target + 1);
    }

    if ((iter + 1) % cool_every == 0) temperature *= options.cooling;
  }

  GIO_ENSURES(is_topological(g, result.order));
  return result;
}

AnnealResult anneal_schedule(const Digraph& g, std::int64_t memory,
                             const AnnealOptions& options) {
  // Start from the best of the standard schedule heuristics so annealing
  // is guaranteed to match or beat best_schedule_io.
  BestSchedule start = best_schedule(g, memory, /*random_orders=*/4,
                                     options.seed ^ 0xC0FFEE);
  return anneal_schedule(g, memory, std::move(start.order), options);
}

}  // namespace graphio::sim
