// p-processor execution simulator for the parallel memory model of
// Section 4.4.
//
// Every vertex is owned by (computed on) exactly one of p processors, each
// with its own fast memory of M values; slow memory is shared and
// unbounded. Execution follows one global topological order; each
// processor sees the subsequence it owns. I/O is counted per processor,
// mirroring the paper's rule that communication with slow memory *or with
// another processor* is I/O:
//
//   * a processor computing v must hold all of v's distinct operands in
//     its fast memory; faulting a non-resident operand costs 1 read;
//   * when that operand is unwritten and currently resident on another
//     processor, the pull is inter-processor: the producer is charged one
//     `send` as the other side of the transfer (once written to slow
//     memory, later readers touch only slow memory and nobody else pays);
//   * evicting a value that still has unconsumed consumers anywhere costs
//     one write unless it was already written (values are immutable);
//     values whose consumers are all done are dropped for free;
//   * sources are computed free on their owner (first-touch rule) and
//     sinks are reported immediately, as in the serial model.
//
// Theorem 6 lower-bounds the I/O of the *maximum-loaded* processor under
// any such execution, so the sandwich test is
//   parallel_spectral_bound(g, M, p) ≤ max_i per_processor[i].total().
#pragma once

#include <cstdint>
#include <vector>

#include "graphio/graph/digraph.hpp"
#include "graphio/sim/memsim.hpp"

namespace graphio::sim {

/// How partition_assignment splits a global evaluation order across p
/// processors.
enum class PartitionStrategy {
  kContiguous,  ///< processor i owns the i-th block of ~n/p order positions
  kRoundRobin,  ///< order position t goes to processor t mod p
  kRandom,      ///< independent uniform owner per vertex (seeded)
};

struct ProcessorIo {
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  /// Transfers of unwritten values pulled out of this processor's fast
  /// memory by another processor (the producer side of P2P communication).
  std::int64_t sends = 0;
  std::int64_t vertices = 0;  ///< how many vertices this processor computed

  [[nodiscard]] std::int64_t total() const noexcept {
    return reads + writes + sends;
  }
};

struct ParallelSimResult {
  std::vector<ProcessorIo> per_processor;

  /// I/O of the busiest processor — the quantity Theorem 6 lower-bounds.
  [[nodiscard]] std::int64_t max_total() const noexcept {
    std::int64_t best = 0;
    for (const ProcessorIo& p : per_processor)
      best = best < p.total() ? p.total() : best;
    return best;
  }
  /// Aggregate I/O across processors.
  [[nodiscard]] std::int64_t sum_total() const noexcept {
    std::int64_t sum = 0;
    for (const ProcessorIo& p : per_processor) sum += p.total();
    return sum;
  }
};

/// Owner assignment for every vertex (indexed by vertex id, values in
/// [0, processors)) built from a global topological order.
std::vector<int> partition_assignment(const Digraph& g,
                                      const std::vector<VertexId>& order,
                                      std::int64_t processors,
                                      PartitionStrategy strategy,
                                      std::uint64_t seed = 0xD15C0ULL);

/// Simulates `order` on p = max(assignment)+1 processors with fast memory
/// `memory` per processor. `assignment[v]` is the owner of vertex v;
/// `order` must be topological. Eviction uses the configured policy with
/// per-processor next-use keys.
ParallelSimResult simulate_parallel_io(const Digraph& g,
                                       const std::vector<VertexId>& order,
                                       const std::vector<int>& assignment,
                                       std::int64_t memory,
                                       const SimOptions& options = {});

/// Convenience: best (minimum max_total) result over the three partition
/// strategies applied to the natural Kahn order. An upper-bound
/// counterpart to parallel_spectral_bound.
ParallelSimResult best_parallel_schedule_io(const Digraph& g,
                                            std::int64_t memory,
                                            std::int64_t processors,
                                            std::uint64_t seed = 0xD15C0ULL);

}  // namespace graphio::sim
