#include "graphio/sim/memsim.hpp"

#include <algorithm>
#include <set>

#include "graphio/graph/topo.hpp"
#include "graphio/sim/schedule.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::sim {

namespace {

/// Per-vertex list of use times (one entry per consuming edge, ascending).
std::vector<std::vector<std::int64_t>> build_use_lists(
    const Digraph& g, const std::vector<VertexId>& order) {
  std::vector<std::vector<std::int64_t>> uses(
      static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t t = 0; t < order.size(); ++t)
    for (VertexId p : g.parents(order[t]))
      uses[static_cast<std::size_t>(p)].push_back(
          static_cast<std::int64_t>(t));
  return uses;
}

}  // namespace

SimResult simulate_io(const Digraph& g, const std::vector<VertexId>& order,
                      std::int64_t memory, const SimOptions& options) {
  GIO_EXPECTS_MSG(is_topological(g, order),
                  "schedule must be a topological order of the graph");
  GIO_EXPECTS(memory >= 1);

  const std::int64_t n = g.num_vertices();
  auto uses = build_use_lists(g, order);
  std::vector<std::size_t> next_use(static_cast<std::size_t>(n), 0);
  std::vector<char> resident(static_cast<std::size_t>(n), 0);
  std::vector<char> written(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> key(static_cast<std::size_t>(n), 0);

  // Eviction pool ordered by policy key:
  //   Belady — key is the next use time; victim = largest (farthest).
  //   LRU    — key is the last use time; victim = smallest (oldest).
  std::set<std::pair<std::int64_t, VertexId>> pool;
  const bool belady = options.policy == EvictionPolicy::kBelady;

  SimResult result;
  std::vector<VertexId> distinct_parents;
  std::vector<char> pinned(static_cast<std::size_t>(n), 0);
  std::int64_t resident_count = 0;

  auto pool_insert = [&](VertexId v, std::int64_t k) {
    key[static_cast<std::size_t>(v)] = k;
    pool.emplace(k, v);
  };
  auto pool_erase = [&](VertexId v) {
    pool.erase({key[static_cast<std::size_t>(v)], v});
  };

  auto evict = [&](VertexId victim) {
    if (!written[static_cast<std::size_t>(victim)]) {
      written[static_cast<std::size_t>(victim)] = 1;
      ++result.writes;
    }
    resident[static_cast<std::size_t>(victim)] = 0;
    --resident_count;
  };

  auto evict_one = [&]() {
    // Choose the victim at the policy end of the pool, skipping pinned
    // vertices (operands of the vertex currently being evaluated).
    if (belady) {
      for (auto it = pool.rbegin(); it != pool.rend(); ++it) {
        if (pinned[static_cast<std::size_t>(it->second)]) continue;
        evict(it->second);
        pool.erase(std::next(it).base());
        return;
      }
    } else {
      for (auto it = pool.begin(); it != pool.end(); ++it) {
        if (pinned[static_cast<std::size_t>(it->second)]) continue;
        evict(it->second);
        pool.erase(it);
        return;
      }
    }
    GIO_EXPECTS_MSG(false, "fast memory too small for the operand set");
  };

  for (std::size_t t = 0; t < order.size(); ++t) {
    const VertexId v = order[t];

    distinct_parents.clear();
    for (VertexId p : g.parents(v)) {
      if (pinned[static_cast<std::size_t>(p)]) continue;
      pinned[static_cast<std::size_t>(p)] = 1;
      distinct_parents.push_back(p);
    }
    GIO_EXPECTS_MSG(static_cast<std::int64_t>(distinct_parents.size()) <=
                        memory,
                    "vertex has more distinct operands than fast memory");

    // Fault in missing operands (each was written when evicted — the model
    // guarantees needed values are persisted).
    for (VertexId p : distinct_parents) {
      if (resident[static_cast<std::size_t>(p)]) continue;
      GIO_ASSERT(written[static_cast<std::size_t>(p)]);
      ++result.reads;
      while (resident_count >= memory) evict_one();
      resident[static_cast<std::size_t>(p)] = 1;
      ++resident_count;
      pool_insert(p, belady ? uses[static_cast<std::size_t>(p)]
                                  [next_use[static_cast<std::size_t>(p)]]
                            : static_cast<std::int64_t>(t));
    }

    // Consume operands: advance their use cursors, drop dead values.
    for (VertexId p : distinct_parents) {
      auto& cursor = next_use[static_cast<std::size_t>(p)];
      const auto& plist = uses[static_cast<std::size_t>(p)];
      while (cursor < plist.size() &&
             plist[cursor] == static_cast<std::int64_t>(t))
        ++cursor;
      pool_erase(p);
      pinned[static_cast<std::size_t>(p)] = 0;
      if (cursor == plist.size()) {
        resident[static_cast<std::size_t>(p)] = 0;  // dead: free drop
        --resident_count;
      } else {
        pool_insert(p, belady ? plist[cursor] : static_cast<std::int64_t>(t));
      }
    }

    // Place the result. Sinks are reported to the user immediately and
    // never occupy fast memory; dead values cannot exist (no uses).
    if (!uses[static_cast<std::size_t>(v)].empty()) {
      while (resident_count >= memory) evict_one();
      resident[static_cast<std::size_t>(v)] = 1;
      ++resident_count;
      pool_insert(v, belady ? uses[static_cast<std::size_t>(v)][0]
                            : static_cast<std::int64_t>(t));
    }
    result.peak_resident = std::max(result.peak_resident, resident_count);
  }

  result.trivial_io =
      static_cast<std::int64_t>(g.sources().size() + g.sinks().size());
  if (options.count_trivial) {
    result.reads += static_cast<std::int64_t>(g.sources().size());
    result.writes += static_cast<std::int64_t>(g.sinks().size());
  }
  return result;
}

BestSchedule best_schedule(const Digraph& g, std::int64_t memory,
                           int random_orders, std::uint64_t seed) {
  auto natural = topological_order(g);
  GIO_EXPECTS_MSG(natural.has_value(), "graph has a cycle");

  BestSchedule best{*natural, simulate_io(g, *natural, memory)};
  auto consider = [&](std::vector<VertexId> order) {
    const SimResult r = simulate_io(g, order, memory);
    if (r.total() < best.result.total()) best = {std::move(order), r};
  };
  consider(dfs_topological_order(g));
  consider(greedy_locality_order(g));
  Prng rng(seed);
  for (int i = 0; i < random_orders; ++i)
    consider(random_topological_order(g, rng));
  return best;
}

SimResult best_schedule_io(const Digraph& g, std::int64_t memory,
                           int random_orders, std::uint64_t seed) {
  return best_schedule(g, memory, random_orders, seed).result;
}

}  // namespace graphio::sim
