#include "graphio/sim/schedule.hpp"

#include <algorithm>
#include <limits>

#include "graphio/support/contracts.hpp"

namespace graphio::sim {

namespace {

/// (parent, edge multiplicity) pairs with distinct parents, per vertex.
std::vector<std::vector<std::pair<VertexId, std::int64_t>>>
distinct_parent_lists(const Digraph& g) {
  const std::int64_t n = g.num_vertices();
  std::vector<std::vector<std::pair<VertexId, std::int64_t>>> lists(
      static_cast<std::size_t>(n));
  std::vector<VertexId> scratch;
  for (VertexId v = 0; v < n; ++v) {
    const auto parents = g.parents(v);
    scratch.assign(parents.begin(), parents.end());
    std::sort(scratch.begin(), scratch.end());
    auto& list = lists[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < scratch.size();) {
      std::size_t j = i;
      while (j < scratch.size() && scratch[j] == scratch[i]) ++j;
      list.emplace_back(scratch[i], static_cast<std::int64_t>(j - i));
      i = j;
    }
  }
  return lists;
}

}  // namespace

std::vector<VertexId> greedy_locality_order(const Digraph& g) {
  const std::int64_t n = g.num_vertices();
  const auto parent_lists = distinct_parent_lists(g);

  std::vector<std::int64_t> missing(static_cast<std::size_t>(n));
  std::vector<std::int64_t> produced_at(static_cast<std::size_t>(n), -1);
  // Remaining consuming edges of each produced value; when a vertex's last
  // edge is consumed the value dies and frees a fast-memory slot.
  std::vector<std::int64_t> remaining_uses(static_cast<std::size_t>(n));

  std::vector<VertexId> ready;
  for (VertexId v = 0; v < n; ++v) {
    missing[static_cast<std::size_t>(v)] = g.in_degree(v);
    remaining_uses[static_cast<std::size_t>(v)] = g.out_degree(v);
    if (missing[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  }

  std::vector<VertexId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    // Pick the ready vertex minimizing live-set pressure:
    //   1. most parents killed (their last use) minus the new live value,
    //   2. then most recently produced operands (likely still resident),
    //   3. then the lowest id (deterministic).
    std::size_t best_pos = 0;
    std::int64_t best_pressure = std::numeric_limits<std::int64_t>::min();
    std::int64_t best_recency = -2;
    for (std::size_t pos = 0; pos < ready.size(); ++pos) {
      const VertexId v = ready[pos];
      std::int64_t kills = 0;
      std::int64_t recency = -1;
      for (const auto& [p, mult] : parent_lists[static_cast<std::size_t>(v)]) {
        if (remaining_uses[static_cast<std::size_t>(p)] == mult) ++kills;
        recency =
            std::max(recency, produced_at[static_cast<std::size_t>(p)]);
      }
      const std::int64_t pressure =
          kills - (g.out_degree(v) > 0 ? 1 : 0);
      const bool better =
          pressure > best_pressure ||
          (pressure == best_pressure && recency > best_recency) ||
          (pressure == best_pressure && recency == best_recency &&
           v < ready[best_pos]);
      if (pos == 0 || better) {
        best_pos = pos;
        best_pressure = pressure;
        best_recency = recency;
      }
    }

    const VertexId v = ready[best_pos];
    ready[best_pos] = ready.back();
    ready.pop_back();

    const auto t = static_cast<std::int64_t>(order.size());
    produced_at[static_cast<std::size_t>(v)] = t;
    order.push_back(v);
    for (const auto& [p, mult] : parent_lists[static_cast<std::size_t>(v)])
      remaining_uses[static_cast<std::size_t>(p)] -= mult;
    for (VertexId child : g.children(v)) {
      if (--missing[static_cast<std::size_t>(child)] == 0)
        ready.push_back(child);
    }
  }
  GIO_EXPECTS_MSG(static_cast<std::int64_t>(order.size()) == n,
                  "graph has a cycle");
  return order;
}

}  // namespace graphio::sim
