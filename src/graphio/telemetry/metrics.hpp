#pragma once

// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms, cheap enough to update from hot paths (single atomic op per
// event) and snapshottable to JSON at any time.
//
// The registry is the one source of truth for lifetime totals; the legacy
// per-instance Stats structs (ArtifactCache, ArtifactStore, ResultStore,
// StreamSession) dual-write into it at their increment sites and keep
// serving per-instance deltas. Registry values are monotone: they survive
// cache reinstalls and session restarts within the process.
//
// Telemetry is observe-only: nothing in here may influence results.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace graphio::telemetry {

// Monotone event counter.
class Counter {
 public:
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Last-value / accumulating double. `add` makes it usable for cumulative
// seconds (phase totals) as well as levels.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

// Point-in-time copy of a histogram. Subtractable, so a caller can bracket
// a run with two snapshots and compute percentiles over just that run even
// though the underlying histogram is process-wide.
struct HistogramSnapshot {
  std::vector<double> bounds;        // upper bounds, ascending; +inf implied
  std::vector<std::int64_t> counts;  // bounds.size() + 1 (overflow last)
  std::int64_t count = 0;
  double sum = 0.0;

  // Linear interpolation inside the bucket containing rank p*count.
  // Exact for uniform-within-bucket data; for the overflow bucket the
  // last finite bound is returned (the upper edge is unknown).
  double percentile(double p) const;

  HistogramSnapshot operator-(const HistogramSnapshot& other) const;
  bool empty() const { return count == 0; }
};

// Fixed-bucket histogram with atomic bucket counts. Bucket bounds are set
// at construction and never change, so observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;
  HistogramSnapshot snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Log-spaced 1-2-5 bounds in seconds, 1us .. 100s. Good resolution for
// latency distributions across six decades.
std::vector<double> default_latency_bounds();

// Named metric registry. Lookup takes a mutex; returned references are
// stable for the registry's lifetime, so hot paths resolve once and then
// touch only atomics.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // Creates with the given bounds on first use (default: latency bounds);
  // later calls return the existing histogram regardless of bounds.
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  //  p50, p95, p99, buckets: [{le, count}, ...nonzero...]}}}
  std::string to_json() const;

  // Prometheus text exposition format: one family per metric under a
  // `graphio_` prefix with dots mapped to underscores — counters as
  // `_total`, gauges verbatim, histograms as *cumulative* `_bucket{le=}`
  // series ending at `+Inf`, plus `_sum`/`_count`.
  std::string to_prometheus() const;

  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace graphio::telemetry
