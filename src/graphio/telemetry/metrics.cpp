#include "graphio/telemetry/metrics.hpp"

#include <algorithm>
#include <charconv>
#include <cstddef>

#include "graphio/io/json.hpp"

namespace graphio::telemetry {

namespace {

/// graphio_<name with every non-[a-zA-Z0-9_] mapped to '_'>.
std::string prometheus_name(const std::string& name) {
  std::string out = "graphio_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

/// Shortest round-trip decimal (std::to_chars), like the JSON writer.
std::string prometheus_value(double value) {
  char buf[64];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, value);
  return ec == std::errc() ? std::string(buf, p) : std::string("0");
}

}  // namespace

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket >= target) {
      if (i >= bounds.size()) {
        // Overflow bucket: the upper edge is unknown, report the last
        // finite bound (a lower bound on the true percentile).
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double position = (target - cumulative) / in_bucket;
      return lo + position * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

HistogramSnapshot HistogramSnapshot::operator-(
    const HistogramSnapshot& other) const {
  HistogramSnapshot delta;
  delta.bounds = bounds;
  delta.counts.resize(counts.size(), 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::int64_t prev =
        i < other.counts.size() ? other.counts[i] : 0;
    delta.counts[i] = counts[i] - prev;
  }
  delta.count = count - other.count;
  delta.sum = sum - other.sum;
  return delta;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_bounds();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::vector<std::atomic<std::int64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  counts_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::vector<double> default_latency_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 1e3; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  return bounds;  // 1us, 2us, 5us, ..., 100s, 200s, 500s
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  io::JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, counter] : counters_) {
    w.key(name).value(counter->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, gauge] : gauges_) {
    w.key(name).value(gauge->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->snapshot();
    w.key(name).begin_object();
    w.key("count").value(snap.count);
    w.key("sum").value(snap.sum);
    w.key("p50").value(snap.percentile(0.50));
    w.key("p95").value(snap.percentile(0.95));
    w.key("p99").value(snap.percentile(0.99));
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (snap.counts[i] == 0) continue;
      w.begin_object();
      if (i < snap.bounds.size()) {
        w.key("le").value(snap.bounds[i]);
      } else {
        w.key("le").value("+inf");
      }
      w.key("count").value(snap.counts[i]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = prometheus_name(name) + "_total";
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + prometheus_value(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->snapshot();
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " histogram\n";
    // Snapshot buckets are per-bucket; the exposition format wants
    // cumulative counts, ending with le="+Inf" == _count.
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      cumulative += snap.counts[i];
      const std::string le = i < snap.bounds.size()
                                 ? prometheus_value(snap.bounds[i])
                                 : std::string("+Inf");
      out += prom + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_sum " + prometheus_value(snap.sum) + "\n";
    out += prom + "_count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace graphio::telemetry
