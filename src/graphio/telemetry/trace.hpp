#pragma once

// Hierarchical span tracing: RAII `Span`s with parent/child nesting (per
// thread, via strict scope nesting), thread ids, and key=value attributes,
// recorded into a bounded per-process ring buffer and exported as JSONL or
// Chrome `trace_event` JSON (loadable in chrome://tracing and Perfetto).
//
// Cost discipline: a Span always captures its start time (steady_clock
// read, same cost as the WallTimer it replaces) so `seconds()` can feed
// phase accounting even with tracing off; everything else — name copy,
// attributes, ring-buffer insertion — happens only while the tracer is
// enabled. Tracing is off by default and observe-only: it never keys
// results and deterministic output modes are unaffected.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace graphio::telemetry {

// One attribute on a span or instant event. Typed so numeric attributes
// export as JSON numbers (CI parses dirty-component counts out of args).
struct Attr {
  enum class Kind { kString, kInt, kDouble };
  std::string key;
  Kind kind = Kind::kString;
  std::string string_value;
  std::int64_t int_value = 0;
  double double_value = 0.0;

  static Attr str(std::string_view k, std::string_view v);
  static Attr integer(std::string_view k, std::int64_t v);
  static Attr number(std::string_view k, double v);
};

// A completed span (or instant event, dur_us < 0) in the ring buffer.
// Timestamps are microseconds relative to the tracer's enable() epoch.
struct SpanRecord {
  std::string name;
  std::uint64_t id = 0;      // unique per process, never 0 for spans
  std::uint64_t parent = 0;  // 0 = root
  std::uint32_t tid = 0;     // dense per-thread index, not the OS tid
  double start_us = 0.0;
  double dur_us = 0.0;  // < 0 marks an instant event
  std::vector<Attr> attrs;

  bool instant() const { return dur_us < 0.0; }
};

// Aggregate row produced by summarize(): per-span-name totals plus self
// time (duration minus the duration of direct children).
struct SpanAggregate {
  std::string name;
  std::int64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
};

struct TraceSummary {
  std::vector<SpanAggregate> rows;  // sorted by self_us descending
  std::int64_t spans = 0;
  std::int64_t instants = 0;
  std::int64_t dropped = 0;  // only known for live Tracer summaries
};

// Bounded recorder. One global instance serves the whole process; tests
// may construct private tracers. enable() clears prior records and sets
// the timestamp epoch; disable() stops recording but keeps the buffer so
// it can still be exported.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(SpanRecord record);
  // Zero-duration marker event (e.g. a store hit) under the current span.
  void instant(std::string_view name, std::vector<Attr> attrs = {});

  // Oldest-first copy of the ring buffer.
  std::vector<SpanRecord> snapshot() const;
  std::uint64_t dropped() const;
  void clear();

  // Microseconds since the enable() epoch.
  double now_us() const;

  void export_chrome(std::ostream& out) const;
  void export_jsonl(std::ostream& out) const;
  TraceSummary summarize() const;

  static Tracer& global();

 private:
  std::vector<SpanRecord> ordered_locked() const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t recorded_ = 0;  // lifetime records, for drop accounting
  std::chrono::steady_clock::time_point epoch_{};
};

// RAII span. Construction captures the start time and (when the tracer is
// enabled) claims an id and pushes itself as the thread's current span;
// end()/destruction restores the parent and records the SpanRecord.
// seconds() returns the elapsed time while open and the frozen duration
// after end(), so it doubles as the phase timer on hot paths.
class Span {
 public:
  explicit Span(std::string_view name, Tracer& tracer = Tracer::global());
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span& attr(std::string_view key, std::string_view value);
  Span& attr(std::string_view key, const char* value);
  Span& attr(std::string_view key, double value);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Span& attr(std::string_view key, T value) {
    return attr_int(key, static_cast<std::int64_t>(value));
  }

  void end();
  double seconds() const;
  bool recording() const { return recording_; }

 private:
  Span& attr_int(std::string_view key, std::int64_t value);

  Tracer* tracer_;
  std::chrono::steady_clock::time_point start_;
  double frozen_seconds_ = 0.0;
  SpanRecord record_;
  bool recording_ = false;
  bool ended_ = false;
};

// --- Trace files -----------------------------------------------------------
//
// Parsing/summarizing side, shared by `graphio trace summarize` and
// bench_trajectory. Accepts both export formats (Chrome trace JSON and
// JSONL) and auto-detects which one it is looking at.

// Parses a trace file's text into records. Throws contract_error on
// malformed input. The overload's `dropped` out-param receives the
// ring-buffer drop count the exporter recorded (0 for files predating
// drop metadata); the metadata itself never becomes a record, so
// summaries stay unchanged either way.
std::vector<SpanRecord> parse_trace(std::string_view text);
std::vector<SpanRecord> parse_trace(std::string_view text,
                                    std::int64_t* dropped);

// Per-name total/self aggregation of parsed records.
TraceSummary summarize_records(const std::vector<SpanRecord>& records);

// Renders a TraceSummary as an aligned text table.
std::string summary_table(const TraceSummary& summary);

// Renders a TraceSummary as a JSON document.
std::string summary_json(const TraceSummary& summary);

}  // namespace graphio::telemetry
