#include "graphio/telemetry/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "graphio/io/json.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::telemetry {

namespace {

// Process-wide span id source; 0 is reserved for "no parent".
std::atomic<std::uint64_t> g_next_span_id{1};

// Dense per-thread index (0, 1, 2, ... in first-use order), stable across
// tracers and friendlier to trace viewers than raw OS tids.
std::uint32_t this_thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

// Innermost open recording span on this thread (0 = none). Spans nest
// strictly by scope, so a single slot per thread is enough.
thread_local std::uint64_t t_current_span = 0;

void write_attr_value(io::JsonWriter& w, const Attr& attr) {
  switch (attr.kind) {
    case Attr::Kind::kString:
      w.value(attr.string_value);
      break;
    case Attr::Kind::kInt:
      w.value(attr.int_value);
      break;
    case Attr::Kind::kDouble:
      w.value(attr.double_value);
      break;
  }
}

Attr parse_attr(const std::string& key, const io::JsonValue& value) {
  if (value.is_string()) return Attr::str(key, value.as_string());
  if (value.is_number()) {
    const double d = value.as_double();
    if (d == std::floor(d) && std::abs(d) < 9.0e15) {
      return Attr::integer(key, static_cast<std::int64_t>(d));
    }
    return Attr::number(key, d);
  }
  return Attr::str(key, "");
}

SpanRecord record_from_event(const io::JsonValue& event) {
  SpanRecord rec;
  if (const auto* name = event.get("name")) rec.name = name->as_string();
  if (const auto* ts = event.get("ts")) rec.start_us = ts->as_double();
  if (const auto* tid = event.get("tid")) {
    rec.tid = static_cast<std::uint32_t>(tid->as_int());
  }
  const auto* ph = event.get("ph");
  if (ph != nullptr && ph->as_string() == "i") {
    rec.dur_us = -1.0;
  } else if (const auto* dur = event.get("dur")) {
    rec.dur_us = dur->as_double();
  }
  if (const auto* args = event.get("args")) {
    for (const auto& [key, value] : args->members()) {
      if (key == "id") {
        rec.id = static_cast<std::uint64_t>(value.as_int());
      } else if (key == "parent") {
        rec.parent = static_cast<std::uint64_t>(value.as_int());
      } else {
        rec.attrs.push_back(parse_attr(key, value));
      }
    }
  }
  return rec;
}

SpanRecord record_from_jsonl(const io::JsonValue& line) {
  SpanRecord rec;
  if (const auto* name = line.get("name")) rec.name = name->as_string();
  if (const auto* id = line.get("id")) {
    rec.id = static_cast<std::uint64_t>(id->as_int());
  }
  if (const auto* parent = line.get("parent")) {
    rec.parent = static_cast<std::uint64_t>(parent->as_int());
  }
  if (const auto* tid = line.get("tid")) {
    rec.tid = static_cast<std::uint32_t>(tid->as_int());
  }
  if (const auto* ts = line.get("ts_us")) rec.start_us = ts->as_double();
  const auto* instant = line.get("instant");
  if (instant != nullptr && instant->as_bool()) {
    rec.dur_us = -1.0;
  } else if (const auto* dur = line.get("dur_us")) {
    rec.dur_us = dur->as_double();
  }
  if (const auto* attrs = line.get("attrs")) {
    for (const auto& [key, value] : attrs->members()) {
      rec.attrs.push_back(parse_attr(key, value));
    }
  }
  return rec;
}

void write_record_jsonl(io::JsonWriter& w, const SpanRecord& rec) {
  w.begin_object();
  w.key("name").value(rec.name);
  w.key("id").value(static_cast<std::int64_t>(rec.id));
  w.key("parent").value(static_cast<std::int64_t>(rec.parent));
  w.key("tid").value(static_cast<std::int64_t>(rec.tid));
  w.key("ts_us").value(rec.start_us);
  if (rec.instant()) {
    w.key("instant").value(true);
  } else {
    w.key("dur_us").value(rec.dur_us);
  }
  if (!rec.attrs.empty()) {
    w.key("attrs").begin_object();
    for (const Attr& attr : rec.attrs) {
      w.key(attr.key);
      write_attr_value(w, attr);
    }
    w.end_object();
  }
  w.end_object();
}

}  // namespace

Attr Attr::str(std::string_view k, std::string_view v) {
  Attr a;
  a.key = std::string(k);
  a.kind = Kind::kString;
  a.string_value = std::string(v);
  return a;
}

Attr Attr::integer(std::string_view k, std::int64_t v) {
  Attr a;
  a.key = std::string(k);
  a.kind = Kind::kInt;
  a.int_value = v;
  return a;
}

Attr Attr::number(std::string_view k, double v) {
  Attr a;
  a.key = std::string(k);
  a.kind = Kind::kDouble;
  a.double_value = v;
  return a;
}

// --- Tracer ----------------------------------------------------------------

void Tracer::enable(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
  recorded_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[recorded_ % capacity_] = std::move(record);
  }
  ++recorded_;
}

void Tracer::instant(std::string_view name, std::vector<Attr> attrs) {
  if (!enabled()) return;
  SpanRecord rec;
  rec.name = std::string(name);
  rec.parent = t_current_span;
  rec.tid = this_thread_index();
  rec.start_us = now_us();
  rec.dur_us = -1.0;
  rec.attrs = std::move(attrs);
  record(std::move(rec));
}

std::vector<SpanRecord> Tracer::ordered_locked() const {
  // Caller holds mutex_. Oldest-first: once the ring wraps, the oldest
  // record sits at recorded_ % capacity_.
  if (recorded_ <= capacity_) return ring_;
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  const std::size_t head = recorded_ % capacity_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head + i) % capacity_]);
  }
  return out;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ordered_locked();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  recorded_ = 0;
}

double Tracer::now_us() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(now - epoch_).count();
}

void Tracer::export_chrome(std::ostream& out) const {
  std::vector<SpanRecord> records = snapshot();
  std::stable_sort(records.begin(), records.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_us < b.start_us;
                   });
  io::JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const SpanRecord& rec : records) {
    w.begin_object();
    w.key("name").value(rec.name);
    w.key("cat").value("graphio");
    w.key("ph").value(rec.instant() ? "i" : "X");
    w.key("ts").value(rec.start_us);
    if (rec.instant()) {
      w.key("s").value("t");
    } else {
      w.key("dur").value(rec.dur_us);
    }
    w.key("pid").value(1);
    w.key("tid").value(static_cast<std::int64_t>(rec.tid));
    w.key("args").begin_object();
    w.key("id").value(static_cast<std::int64_t>(rec.id));
    w.key("parent").value(static_cast<std::int64_t>(rec.parent));
    for (const Attr& attr : rec.attrs) {
      w.key(attr.key);
      write_attr_value(w, attr);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  // Overflow is part of the trace's meaning: a summary computed from the
  // file must be able to say its totals undercount. Written only when
  // non-zero so complete traces stay byte-identical to older exports.
  const auto dropped_events = static_cast<std::int64_t>(dropped());
  if (dropped_events > 0) w.key("droppedEvents").value(dropped_events);
  w.end_object();
  out << w.str() << '\n';
}

void Tracer::export_jsonl(std::ostream& out) const {
  for (const SpanRecord& rec : snapshot()) {
    io::JsonWriter w;
    write_record_jsonl(w, rec);
    out << w.str() << '\n';
  }
  // Trailing metadata line (parse_trace skips it); only on overflow so
  // complete traces stay line-per-record.
  const auto dropped_events = static_cast<std::int64_t>(dropped());
  if (dropped_events > 0) {
    io::JsonWriter w;
    w.begin_object();
    w.key("trace_meta").value(true);
    w.key("dropped").value(dropped_events);
    w.end_object();
    out << w.str() << '\n';
  }
}

TraceSummary Tracer::summarize() const {
  TraceSummary summary = summarize_records(snapshot());
  summary.dropped = static_cast<std::int64_t>(dropped());
  return summary;
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

// --- Span ------------------------------------------------------------------

Span::Span(std::string_view name, Tracer& tracer)
    : tracer_(&tracer), start_(std::chrono::steady_clock::now()) {
  if (!tracer_->enabled()) return;
  recording_ = true;
  record_.name = std::string(name);
  record_.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  record_.parent = t_current_span;
  record_.tid = this_thread_index();
  record_.start_us = tracer_->now_us();
  t_current_span = record_.id;
}

Span::~Span() { end(); }

Span& Span::attr(std::string_view key, std::string_view value) {
  if (recording_) record_.attrs.push_back(Attr::str(key, value));
  return *this;
}

Span& Span::attr(std::string_view key, const char* value) {
  return attr(key, std::string_view(value));
}

Span& Span::attr_int(std::string_view key, std::int64_t value) {
  if (recording_) record_.attrs.push_back(Attr::integer(key, value));
  return *this;
}

Span& Span::attr(std::string_view key, double value) {
  if (recording_) record_.attrs.push_back(Attr::number(key, value));
  return *this;
}

void Span::end() {
  if (ended_) return;
  ended_ = true;
  const auto now = std::chrono::steady_clock::now();
  frozen_seconds_ = std::chrono::duration<double>(now - start_).count();
  if (!recording_) return;
  t_current_span = record_.parent;
  record_.dur_us = frozen_seconds_ * 1e6;
  // The tracer may have been disabled while the span was open; the id and
  // parent linkage is already claimed, so record anyway for a coherent
  // tree — record() is cheap and export happens after disable().
  tracer_->record(std::move(record_));
  recording_ = false;
}

double Span::seconds() const {
  if (ended_) return frozen_seconds_;
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

// --- Trace files -----------------------------------------------------------

std::vector<SpanRecord> parse_trace(std::string_view text) {
  return parse_trace(text, nullptr);
}

std::vector<SpanRecord> parse_trace(std::string_view text,
                                    std::int64_t* dropped) {
  if (dropped != nullptr) *dropped = 0;
  std::vector<SpanRecord> records;
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos) return records;

  // Chrome format is one JSON object with a traceEvents array; JSONL is
  // one object per line. Try the document parse first.
  if (text[first] == '{') {
    const auto last_newline = text.find('\n', first);
    const bool single_doc =
        last_newline == std::string_view::npos ||
        text.find_first_not_of(" \t\r\n", last_newline) ==
            std::string_view::npos;
    if (single_doc || text.find("traceEvents") != std::string_view::npos) {
      const io::JsonValue doc = io::JsonValue::parse(text);
      const io::JsonValue* events = doc.get("traceEvents");
      GIO_EXPECTS_MSG(events != nullptr && events->is_array(),
                      "trace document has no traceEvents array");
      if (dropped != nullptr) {
        if (const io::JsonValue* d = doc.get("droppedEvents"))
          *dropped = d->as_int();
      }
      records.reserve(events->size());
      for (const io::JsonValue& event : events->items()) {
        records.push_back(record_from_event(event));
      }
      return records;
    }
  }

  // JSONL: one record per non-empty line.
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    const io::JsonValue v = io::JsonValue::parse(line);
    if (v.get("trace_meta") != nullptr) {
      if (dropped != nullptr) {
        if (const io::JsonValue* d = v.get("dropped")) *dropped = d->as_int();
      }
      continue;
    }
    records.push_back(record_from_jsonl(v));
  }
  return records;
}

TraceSummary summarize_records(const std::vector<SpanRecord>& records) {
  TraceSummary summary;
  // Self time = own duration minus the summed duration of direct children.
  std::unordered_map<std::uint64_t, double> child_dur;
  child_dur.reserve(records.size());
  for (const SpanRecord& rec : records) {
    if (rec.instant()) continue;
    if (rec.parent != 0) child_dur[rec.parent] += rec.dur_us;
  }
  std::unordered_map<std::string, std::size_t> row_index;
  for (const SpanRecord& rec : records) {
    if (rec.instant()) {
      ++summary.instants;
      continue;
    }
    ++summary.spans;
    auto [it, inserted] = row_index.emplace(rec.name, summary.rows.size());
    if (inserted) {
      SpanAggregate row;
      row.name = rec.name;
      summary.rows.push_back(std::move(row));
    }
    SpanAggregate& row = summary.rows[it->second];
    ++row.count;
    row.total_us += rec.dur_us;
    double self = rec.dur_us;
    const auto child = child_dur.find(rec.id);
    if (child != child_dur.end()) self -= child->second;
    row.self_us += std::max(0.0, self);
  }
  std::stable_sort(summary.rows.begin(), summary.rows.end(),
                   [](const SpanAggregate& a, const SpanAggregate& b) {
                     return a.self_us > b.self_us;
                   });
  return summary;
}

std::string summary_table(const TraceSummary& summary) {
  std::ostringstream out;
  auto ms = [](double us) {
    std::ostringstream s;
    s.setf(std::ios::fixed);
    s.precision(3);
    s << us / 1e3;
    return s.str();
  };
  std::size_t name_width = 4;  // "span"
  for (const SpanAggregate& row : summary.rows) {
    name_width = std::max(name_width, row.name.size());
  }
  auto pad = [](const std::string& s, std::size_t width) {
    return s + std::string(width > s.size() ? width - s.size() : 0, ' ');
  };
  auto rpad = [](const std::string& s, std::size_t width) {
    return std::string(width > s.size() ? width - s.size() : 0, ' ') + s;
  };
  out << pad("span", name_width) << "  " << rpad("count", 7) << "  "
      << rpad("total ms", 12) << "  " << rpad("self ms", 12) << "  "
      << rpad("avg ms", 10) << '\n';
  out << std::string(name_width + 2 + 7 + 2 + 12 + 2 + 12 + 2 + 10, '-')
      << '\n';
  for (const SpanAggregate& row : summary.rows) {
    const double avg_us =
        row.count > 0 ? row.total_us / static_cast<double>(row.count) : 0.0;
    out << pad(row.name, name_width) << "  "
        << rpad(std::to_string(row.count), 7) << "  "
        << rpad(ms(row.total_us), 12) << "  " << rpad(ms(row.self_us), 12)
        << "  " << rpad(ms(avg_us), 10) << '\n';
  }
  out << summary.spans << " spans, " << summary.instants << " instant events";
  if (summary.dropped > 0) out << ", " << summary.dropped << " dropped";
  out << '\n';
  return out.str();
}

std::string summary_json(const TraceSummary& summary) {
  io::JsonWriter w;
  w.begin_object();
  w.key("spans").value(summary.spans);
  w.key("instants").value(summary.instants);
  w.key("dropped").value(summary.dropped);
  w.key("rows").begin_array();
  for (const SpanAggregate& row : summary.rows) {
    w.begin_object();
    w.key("name").value(row.name);
    w.key("count").value(row.count);
    w.key("total_us").value(row.total_us);
    w.key("self_us").value(row.self_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace graphio::telemetry
