// Deterministic pseudo-random number generation.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, so every
// experiment in the repository is reproducible from a single 64-bit seed.
// The generator satisfies std::uniform_random_bit_generator and can be used
// with <random> distributions, but we also provide the handful of helpers
// the library actually needs (uniform doubles, bounded ints, normals,
// shuffles) to keep call sites terse.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "graphio/support/contracts.hpp"

namespace graphio {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Small, fast, and high quality; deterministic across
/// platforms (unlike std::mt19937 distributions which vary by vendor).
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t n) noexcept {
    GIO_ASSERT(n > 0);
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Box-Muller (sufficient for Lanczos start vectors).
  double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    constexpr double two_pi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// A fresh generator whose stream is independent of this one.
  Prng split() noexcept { return Prng((*this)() ^ 0xA0761D6478BD642FULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace graphio
