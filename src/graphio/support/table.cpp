#include "graphio/support/table.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "graphio/support/contracts.hpp"

namespace graphio {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GIO_EXPECTS_MSG(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  GIO_EXPECTS_MSG(cells.size() == header_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv_file(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path);
  GIO_EXPECTS_MSG(out.good(), "cannot open CSV output file: " + path);
  write_csv(out);
}

std::string format_double(double value, int digits) {
  if (std::isnan(value)) return "-";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

std::string format_int(long long value) { return std::to_string(value); }

}  // namespace graphio
