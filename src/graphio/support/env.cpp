#include "graphio/support/env.hpp"

#include <cstdlib>

#include "graphio/support/contracts.hpp"

namespace graphio {

std::optional<std::string> env_string(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  return std::string(raw);
}

std::optional<long long> env_int(const std::string& name) {
  auto raw = env_string(name);
  if (!raw) return std::nullopt;
  std::size_t pos = 0;
  long long value = 0;
  try {
    value = std::stoll(*raw, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  GIO_EXPECTS_MSG(pos == raw->size(),
                  "environment variable " + name + " is not an integer: " + *raw);
  return value;
}

BenchScale bench_scale_from_env() {
  auto raw = env_string("GRAPHIO_BENCH_SCALE");
  if (!raw) return BenchScale::kDefault;
  if (*raw == "quick") return BenchScale::kQuick;
  if (*raw == "default") return BenchScale::kDefault;
  if (*raw == "paper") return BenchScale::kPaper;
  GIO_EXPECTS_MSG(false, "GRAPHIO_BENCH_SCALE must be quick|default|paper, got " + *raw);
  return BenchScale::kDefault;  // unreachable
}

std::string to_string(BenchScale scale) {
  switch (scale) {
    case BenchScale::kQuick: return "quick";
    case BenchScale::kDefault: return "default";
    case BenchScale::kPaper: return "paper";
  }
  return "unknown";
}

}  // namespace graphio
