// Environment-variable knobs shared by the bench harness.
//
// GRAPHIO_BENCH_SCALE = quick | default | paper
//   quick   — smoke-test sizes (CI)
//   default — every figure reproduced at sizes that finish in minutes
//   paper   — the full parameter ranges from the paper (minutes to hours)
#pragma once

#include <optional>
#include <string>

namespace graphio {

enum class BenchScale { kQuick, kDefault, kPaper };

/// Reads GRAPHIO_BENCH_SCALE (falls back to kDefault; unknown values throw).
BenchScale bench_scale_from_env();

/// Reads a string environment variable.
std::optional<std::string> env_string(const std::string& name);

/// Reads an integer environment variable (throws contract_error on garbage).
std::optional<long long> env_int(const std::string& name);

/// Human-readable name of a scale.
std::string to_string(BenchScale scale);

}  // namespace graphio
