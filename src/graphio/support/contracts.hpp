// Lightweight contract checking (C++ Core Guidelines I.6/I.8 style).
//
// GIO_EXPECTS checks preconditions at public API boundaries and throws
// graphio::contract_error on violation; it stays enabled in release builds
// because bound *validity* depends on input invariants (e.g. acyclicity).
// GIO_ASSERT guards internal invariants and compiles out under NDEBUG.
#pragma once

#include <stdexcept>
#include <string>

namespace graphio {

/// Thrown when a public-API precondition is violated.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::string what = std::string(kind) + " violated: (" + cond + ") at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) what += " — " + msg;
  throw contract_error(what);
}
}  // namespace detail

#define GIO_EXPECTS(cond)                                                    \
  do {                                                                       \
    if (!(cond))                                                             \
      ::graphio::detail::contract_fail("precondition", #cond, __FILE__,      \
                                       __LINE__, "");                        \
  } while (false)

#define GIO_EXPECTS_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond))                                                             \
      ::graphio::detail::contract_fail("precondition", #cond, __FILE__,      \
                                       __LINE__, (msg));                     \
  } while (false)

#define GIO_ENSURES(cond)                                                    \
  do {                                                                       \
    if (!(cond))                                                             \
      ::graphio::detail::contract_fail("postcondition", #cond, __FILE__,     \
                                       __LINE__, "");                        \
  } while (false)

#ifdef NDEBUG
#define GIO_ASSERT(cond) ((void)0)
#else
#define GIO_ASSERT(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::graphio::detail::contract_fail("invariant", #cond, __FILE__,         \
                                       __LINE__, "");                        \
  } while (false)
#endif

}  // namespace graphio
