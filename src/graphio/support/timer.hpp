// Wall-clock timing for the runtime experiments (paper Figure 11).
#pragma once

#include <chrono>

namespace graphio {

/// Monotonic wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept {
    return seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace graphio
