#include "graphio/support/durability.hpp"

#include <filesystem>

#if defined(_WIN32)
// No fsync; treat durable writes as best-effort flushes.
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace graphio {

namespace {

#if !defined(_WIN32)
bool fsync_at(const char* path, int extra_flags) {
  const int fd = ::open(path, O_RDONLY | extra_flags);
  if (fd < 0) return false;
  const int rc = ::fsync(fd);
  ::close(fd);
  return rc == 0;
}
#endif

}  // namespace

bool fsync_path(const std::string& path) {
#if defined(_WIN32)
  (void)path;
  return true;
#else
  return fsync_at(path.c_str(), 0);
#endif
}

bool fsync_parent_dir(const std::string& path) {
#if defined(_WIN32)
  (void)path;
  return true;
#else
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  return fsync_at(parent.c_str(), O_DIRECTORY);
#endif
}

}  // namespace graphio
