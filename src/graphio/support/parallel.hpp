// Shared-memory parallelism helpers.
//
// The library parallelizes its hot loops (CSR matvec, reorthogonalization,
// the per-vertex min-cut sweep) with OpenMP when available. Builds without
// OpenMP (e.g. the ThreadSanitizer CI job) fall back to a std::thread
// implementation with the same contract instead of silently going serial:
// parallel_for chunks statically, parallel_for_dynamic hands out indices
// through an atomic counter. Both fallbacks run serially when the loop is
// too small to amortize thread spawns, when the machine has one hardware
// thread, or when called from inside another parallel region (OpenMP's
// default no-nesting behavior).
//
// Threads that are themselves one lane of an outer pool — the serve
// scheduler's workers — hold a SerialRegion so every parallel_for they
// reach degrades to serial in both build flavors; without it, N workers
// concurrently eigensolving would each spawn hardware_threads() more
// threads (N× oversubscription).
#pragma once

#include <cstdint>

#if defined(GRAPHIO_HAS_OPENMP)
#include <omp.h>
#else
#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>
#endif

namespace graphio {

/// Number of worker threads a parallel_for may use (1 without any
/// parallelism support).
inline int hardware_threads() noexcept {
#if defined(GRAPHIO_HAS_OPENMP)
  return omp_get_max_threads();
#else
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0U ? 1 : static_cast<int>(hc);
#endif
}

namespace detail {

/// True while the calling thread must not fan out further (it is inside a
/// parallel_for body, or holds a SerialRegion).
inline bool& serial_override() noexcept {
  thread_local bool flag = false;
  return flag;
}

}  // namespace detail

/// RAII: while alive, every parallel_for / parallel_for_dynamic on this
/// thread runs serially. Outer thread pools wrap their worker loops in
/// one so inner library loops never oversubscribe the machine. Nestable.
class SerialRegion {
 public:
  SerialRegion() noexcept : previous_(detail::serial_override()) {
    detail::serial_override() = true;
  }
  ~SerialRegion() { detail::serial_override() = previous_; }
  SerialRegion(const SerialRegion&) = delete;
  SerialRegion& operator=(const SerialRegion&) = delete;

 private:
  bool previous_;
};

#if !defined(GRAPHIO_HAS_OPENMP)
namespace detail {

/// Spawn threshold for the static schedule: below this many indices a
/// uniform body (one matvec row, one axpy element) finishes faster than
/// the threads start.
constexpr std::int64_t kMinStaticParallel = 2048;

template <typename Body>
void run_threaded(std::int64_t n, std::int64_t grain, const Body& body) {
  const int threads = static_cast<int>(
      std::min<std::int64_t>(hardware_threads(), (n + grain - 1) / grain));
  std::atomic<std::int64_t> next{0};
  auto worker = [&]() noexcept {
    const SerialRegion nested_guard;
    for (;;) {
      const std::int64_t begin = next.fetch_add(grain);
      if (begin >= n) break;
      const std::int64_t end = std::min(n, begin + grain);
      for (std::int64_t i = begin; i < end; ++i) body(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (std::thread& t : pool) t.join();
}

template <typename Body>
bool run_serial_if_small(std::int64_t n, std::int64_t threshold,
                         const Body& body) {
  if (n >= threshold && hardware_threads() > 1 && !serial_override())
    return false;
  for (std::int64_t i = 0; i < n; ++i) body(i);
  return true;
}

}  // namespace detail
#endif

/// Runs body(i) for i in [0, n) — in parallel when possible.
/// The body must write to disjoint state per index (no synchronization is
/// provided; C++ Core Guidelines CP.2: avoid data races by construction)
/// and must not throw.
template <typename Body>
void parallel_for(std::int64_t n, const Body& body) {
#if defined(GRAPHIO_HAS_OPENMP)
  if (detail::serial_override()) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) body(i);
#else
  if (detail::run_serial_if_small(n, detail::kMinStaticParallel, body))
    return;
  const std::int64_t chunk =
      (n + hardware_threads() - 1) / hardware_threads();
  detail::run_threaded(n, chunk, body);
#endif
}

/// Same but with a dynamic schedule; used when per-index work is skewed
/// (e.g. the convex min-cut sweep where max-flow cost varies per vertex).
template <typename Body>
void parallel_for_dynamic(std::int64_t n, const Body& body) {
#if defined(GRAPHIO_HAS_OPENMP)
  if (detail::serial_override()) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t i = 0; i < n; ++i) body(i);
#else
  // Dynamic callers have heavyweight bodies (a max-flow per index), so
  // any n >= 2 is worth distributing.
  if (detail::run_serial_if_small(n, 2, body)) return;
  detail::run_threaded(n, 1, body);
#endif
}

}  // namespace graphio
