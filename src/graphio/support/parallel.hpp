// Shared-memory parallelism helpers.
//
// The library parallelizes its hot loops (CSR matvec, reorthogonalization,
// the per-vertex min-cut sweep) with OpenMP when available and degrades to
// serial execution otherwise, so the build never requires OpenMP.
#pragma once

#include <cstdint>

#if defined(GRAPHIO_HAS_OPENMP)
#include <omp.h>
#endif

namespace graphio {

/// Number of worker threads OpenMP would use (1 without OpenMP).
inline int hardware_threads() noexcept {
#if defined(GRAPHIO_HAS_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Runs body(i) for i in [0, n) — in parallel when OpenMP is available.
/// The body must write to disjoint state per index (no synchronization is
/// provided; C++ Core Guidelines CP.2: avoid data races by construction).
template <typename Body>
void parallel_for(std::int64_t n, const Body& body) {
#if defined(GRAPHIO_HAS_OPENMP)
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) body(i);
#else
  for (std::int64_t i = 0; i < n; ++i) body(i);
#endif
}

/// Same but with a dynamic schedule; used when per-index work is skewed
/// (e.g. the convex min-cut sweep where max-flow cost varies per vertex).
template <typename Body>
void parallel_for_dynamic(std::int64_t n, const Body& body) {
#if defined(GRAPHIO_HAS_OPENMP)
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t i = 0; i < n; ++i) body(i);
#else
  for (std::int64_t i = 0; i < n; ++i) body(i);
#endif
}

}  // namespace graphio
