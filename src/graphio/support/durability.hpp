#pragma once

// Durable-write helpers. An ofstream flush() only hands data to the OS;
// these push it to stable storage with POSIX fsync so a crash after a
// batch boundary cannot lose acknowledged appends. Both helpers open a
// fresh descriptor on the path — fsync flushes all dirty pages of the
// file regardless of which descriptor wrote them — so callers keep their
// buffered streams and sync at whatever cadence they choose.

#include <string>

namespace graphio {

/// fsyncs the file at `path` (after the caller has flushed its stream).
/// Returns false if the file cannot be opened or synced. No-op success on
/// platforms without fsync.
bool fsync_path(const std::string& path);

/// fsyncs the directory containing `path`, making a rename of `path`
/// itself durable. Returns false on failure.
bool fsync_parent_dir(const std::string& path);

}  // namespace graphio
