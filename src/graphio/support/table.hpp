// Console table / CSV emission for the benchmark harness.
//
// Every bench binary prints the rows/series of the paper figure it
// reproduces as an aligned text table, and can mirror the same rows into a
// CSV file for plotting.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace graphio {

/// A simple column-aligned table with an optional CSV mirror.
///
/// Usage:
///   Table t({"l", "n", "spectral M=4", "mincut M=4"});
///   t.add_row({"3", "32", "12.4", "8"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows (excluding header).
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Writes the aligned table.
  void print(std::ostream& os) const;

  /// Writes header + rows as RFC-4180-ish CSV (cells with commas/quotes are
  /// quoted).
  void write_csv(std::ostream& os) const;

  /// Convenience: writes CSV to `path` (no-op when path is empty).
  void write_csv_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly: fixed with `digits` decimals, trimming
/// trailing zeros ("12.5", "0.001", "3"). NaN renders as "-" (used for
/// "not run / cut off" cells in figure tables, matching the paper's
/// missing points).
std::string format_double(double value, int digits = 3);

/// Formats an integral count with no decoration.
std::string format_int(long long value);

}  // namespace graphio
