// Jobs — the serve subsystem's unit of work, parsed from a JSONL line:
// one BoundRequest with a stable id, or a stream job against a named
// evolving graph.
//
// Bound-job grammar (one JSON object per line):
//
//   {"spec": "fft:8",                     required — family spec or file
//    "memories": [4, 8, 16],              required — non-empty, >= 0
//    "methods": ["spectral", "mincut"],   optional — default every method
//    "processors": 4,                     optional — Theorem 6 p, default 1
//    "sim_random_orders": 4,              optional — memsim sampling knob
//    "solver": "auto",                    optional — eigensolver policy
//                                         (auto|dense|lanczos|lobpcg)
//    "decompose": true,                   optional — per-component spectra
//    "name": "my-label"}                  optional — display name
//
// Stream-job grammar (graphio/stream): a "graph" key addresses a named
// evolving graph held by the BatchSession; such jobs execute in file
// order on one stream lane (mutations are stateful), while plain bound
// jobs keep fanning out across workers.
//
//   {"graph": "g", "load": "fft:6"}       create/replace the named graph
//   {"graph": "g", "patch": [MUTATION...], "label": "rewrite-3"}
//                                         apply mutations (see
//                                         stream/mutation.hpp grammar)
//   {"graph": "g", "memories": [8], "methods": ["spectral"], ...}
//                                         query the named graph (same
//                                         keys as a bound job minus spec)
//
// Parsing is strict: unknown keys, wrong types, and out-of-range values
// throw contract_error with enough context to report the offending line
// without aborting the batch (BatchSession catches per line).
#pragma once

#include <cstdint>
#include <string>

#include "graphio/engine/request.hpp"
#include "graphio/io/json.hpp"
#include "graphio/stream/mutation.hpp"

namespace graphio::serve {

enum class JobKind {
  kBound,  ///< evaluate a spec (or a named stream graph, when graph set)
  kLoad,   ///< create/replace a named stream graph from a spec
  kPatch,  ///< mutate a named stream graph
};

struct Job {
  /// Stable id assigned by the ingest side (the 1-based jobs-file line
  /// number in batch mode); results carry it so callers can join output
  /// back to input after out-of-order completion.
  std::int64_t id = 0;
  JobKind kind = JobKind::kBound;
  /// Named evolving graph this job addresses; empty for plain bound jobs.
  std::string graph;
  /// Spec to load (kLoad).
  std::string load_spec;
  /// Mutations to apply (kPatch).
  stream::Patch patch;
  /// The analysis request (kBound; spec empty when `graph` routes it).
  engine::BoundRequest request;

  /// True when this job must run on the ordered stream lane.
  [[nodiscard]] bool is_stream() const noexcept { return !graph.empty(); }
};

/// Parses one job line (bound or stream form). Throws contract_error on
/// invalid JSON, missing/unknown keys, or values the Engine would reject.
Job job_from_json(const io::JsonValue& value);
Job job_from_json_line(const std::string& line);

/// Parses one bound-job line into a request (stream jobs rejected).
/// Throws contract_error like job_from_json.
engine::BoundRequest request_from_json(const io::JsonValue& value);

/// Convenience: parse + validate one JSONL line.
engine::BoundRequest request_from_json_line(const std::string& line);

/// Serializes a request back to its job-line form (round-trip with
/// request_from_json; used by tools generating job corpora).
std::string request_to_json_line(const engine::BoundRequest& request);

}  // namespace graphio::serve
