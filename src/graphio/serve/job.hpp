// Jobs — the serve subsystem's unit of work: one BoundRequest with a
// stable id, parsed from a JSONL job line.
//
// Job-line grammar (one JSON object per line):
//
//   {"spec": "fft:8",                     required — family spec or file
//    "memories": [4, 8, 16],              required — non-empty, >= 0
//    "methods": ["spectral", "mincut"],   optional — default every method
//    "processors": 4,                     optional — Theorem 6 p, default 1
//    "sim_random_orders": 4,              optional — memsim sampling knob
//    "solver": "auto",                    optional — eigensolver policy
//                                         (auto|dense|lanczos|lobpcg)
//    "decompose": true,                   optional — per-component spectra
//    "name": "my-label"}                  optional — display name
//
// Parsing is strict: unknown keys, wrong types, and out-of-range values
// throw contract_error with enough context to report the offending line
// without aborting the batch (BatchSession catches per line).
#pragma once

#include <cstdint>
#include <string>

#include "graphio/engine/request.hpp"
#include "graphio/io/json.hpp"

namespace graphio::serve {

struct Job {
  /// Stable id assigned by the ingest side (the 1-based jobs-file line
  /// number in batch mode); results carry it so callers can join output
  /// back to input after out-of-order completion.
  std::int64_t id = 0;
  engine::BoundRequest request;
};

/// Parses one job line into a request. Throws contract_error on invalid
/// JSON, missing/unknown keys, or values the Engine would reject.
engine::BoundRequest request_from_json(const io::JsonValue& value);

/// Convenience: parse + validate one JSONL line.
engine::BoundRequest request_from_json_line(const std::string& line);

/// Serializes a request back to its job-line form (round-trip with
/// request_from_json; used by tools generating job corpora).
std::string request_to_json_line(const engine::BoundRequest& request);

}  // namespace graphio::serve
