// BatchSession — JSONL in, JSONL out: the serve subsystem's front door.
//
// run() ingests a jobs file (one job per line, see serve/job.hpp), fans
// it across the Scheduler, and streams one result line per job to the
// output as results complete:
//
//   {"job": 3, "report": {...}}          evaluated request (job = line no)
//   {"job": 5, "load": {...}}            stream graph created/replaced
//   {"job": 6, "patch": {...}}           stream mutations applied
//   {"job": 7, "error": {"kind": "reject", "message": "unknown …"}}
//
// Failed jobs carry a structured error object — kind ("reject" for
// unparseable lines, "error" for evaluation failures, an injected
// fault's kind otherwise), the fault site when one fired, the attempts
// consumed by the scheduler's transient-retry loop, and quarantined:true
// when a job exhausted its retry budget. Reports whose bound came from a
// deadline- or fault-degraded evaluation carry a top-level
// "degraded": true next to "report" (the bound is still a sound lower
// bound, just weaker than a full run).
//
// Stream jobs (any line with a "graph" key) address named evolving
// graphs (graphio/stream) owned by the session. Mutations are stateful,
// so the stream lane is *ordered*: stream jobs execute in file order
// during ingest, each query seeing exactly the patches above it, while
// plain bound jobs keep fanning out across the worker pool. Stream
// queries run on the owning StreamSession's engine (clean components
// served from its component cache), not on the worker engines. With a
// ResultStore configured they are persistent too, keyed by the session's
// order-independent component-multiset fingerprint — the durable
// identity of an evolving graph's *state* — so a graph that reverts to a
// previously analyzed state hits the disk store.
//
// Malformed lines are rejected as error records without aborting the rest
// of the batch. Result lines are *deterministic*: reports are serialized
// without timing/cache fields, so `sort` of two runs' outputs compares
// byte-identical across thread counts and warm/cold stores. Timing lives
// in the returned BatchSummary (and its to_json footer).
//
// serve() is the interactive sibling: a stdin/stdout request/response
// loop (one JSONL request line in, one result line out, flushed) for
// driving graphio from another process — and the engine behind
// `graphio stream`, which replays an updates file through it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "graphio/audit/provenance.hpp"
#include "graphio/serve/scheduler.hpp"
#include "graphio/stream/session.hpp"
#include "graphio/telemetry/metrics.hpp"

namespace graphio::serve {

struct BatchOptions {
  /// Worker threads; 0 means hardware_threads().
  int threads = 0;
  /// Directory for the persistent ResultStore; empty disables it.
  std::string store_dir;
  /// Directory for the durable tier of the process-wide ArtifactStore
  /// (--store-artifacts); empty keeps the store memory-only.
  std::string artifact_dir;
  /// Eigenbasis LRU budget in MiB (--warm-basis-mb). With a budget,
  /// stream queries retain converged component eigenbases and warm-start
  /// the solves of patched successors from them; 0 turns the warm layer
  /// off entirely.
  std::int64_t warm_basis_mb = 0;
  /// Attach each report's provenance record to its result line
  /// (--explain). Off by default: result lines stay byte-identical
  /// across warm/cold stores, which `--explain` deliberately gives up
  /// (solver tiers differ between a cold and a warm run).
  bool explain = false;
  /// Directory for the append-only provenance JSONL (--provenance);
  /// empty disables the trail. Independent of `explain` — the trail can
  /// be recorded while result lines stay deterministic.
  std::string provenance_dir;
  /// fsync the ResultStore, artifact-store and provenance logs at batch
  /// boundaries (--durable): appended rows survive power loss, not just
  /// process death. Off by default — flush-only keeps serve latency flat.
  bool durable = false;
  /// Soft per-job deadline in milliseconds (--job-timeout-ms, 0 = none);
  /// see SchedulerOptions::job_timeout_ms.
  std::int64_t job_timeout_ms = 0;
  /// Transient-failure attempts per job; see SchedulerOptions.
  int max_attempts = 3;
  /// Backoff before the first retry in milliseconds, doubled per retry.
  double backoff_ms = 1.0;
};

struct BatchSummary {
  std::int64_t jobs = 0;           ///< parsed job lines handed to workers
  std::int64_t ok = 0;             ///< jobs that produced a result
  std::int64_t failed = 0;         ///< jobs that errored during evaluation
  std::int64_t rejected_lines = 0; ///< unparseable job lines
  std::int64_t retried = 0;        ///< extra attempts spent on transients
  std::int64_t quarantined = 0;    ///< jobs that exhausted their retries
  std::int64_t degraded = 0;       ///< ok jobs with a degraded bound
  int threads = 0;
  std::int64_t steals = 0;         ///< queue rebalance events
  double seconds = 0.0;            ///< batch wall time
  double throughput = 0.0;         ///< completed jobs per second
  double p50_seconds = 0.0;        ///< median per-job worker latency
  double p95_seconds = 0.0;        ///< 95th-percentile per-job latency
  double p99_seconds = 0.0;        ///< 99th-percentile, from `latency`
  /// Per-job latency distribution for this run: the delta of the
  /// process-wide "serve.job.seconds" registry histogram bracketing the
  /// run, so it covers exactly this batch even when several batches
  /// share the process. p99_seconds is interpolated from it.
  telemetry::HistogramSnapshot latency;
  std::int64_t store_hits = 0;     ///< rows served from the ResultStore
  std::int64_t store_misses = 0;
  engine::ArtifactCache::Stats cache;  ///< artifact activity this batch
  /// Stream-lane activity (zero when the input had no stream jobs).
  std::int64_t stream_jobs = 0;        ///< loads + patches + queries
  std::int64_t patches = 0;            ///< load/patch jobs applied
  std::int64_t mutations = 0;          ///< mutations across patches
  std::int64_t dirty_components = 0;   ///< components re-analyzed
  std::int64_t clean_components = 0;   ///< components reused as cached
  /// Fraction of store lookups served, 0 when the store was off/empty.
  [[nodiscard]] double store_hit_rate() const;
  [[nodiscard]] std::string to_json() const;
};

class BatchSession {
 public:
  /// Opens the store (when configured) and builds the worker pool.
  explicit BatchSession(const BatchOptions& options = {});
  ~BatchSession();

  /// Batch mode: evaluates every JSONL line of `in`, streaming result
  /// lines to `out` as they complete.
  BatchSummary run(std::istream& in, std::ostream& out);

  /// Interactive mode: one request line in, one result line out (flushed
  /// after every response), until EOF. Uses worker 0's Engine only, so
  /// artifacts stay warm across requests.
  BatchSummary serve(std::istream& in, std::ostream& out);

  [[nodiscard]] const ResultStore* store() const noexcept {
    return store_.get();
  }
  /// The process-wide content-addressed artifact store shared by every
  /// worker Engine and stream session (disk-backed iff artifact_dir).
  [[nodiscard]] const std::shared_ptr<store::ArtifactStore>&
  artifact_store() const noexcept {
    return artifacts_;
  }
  [[nodiscard]] Scheduler& scheduler() noexcept { return *scheduler_; }

  /// The named stream session, or nullptr before any load of that name
  /// (test/introspection hook).
  [[nodiscard]] const stream::StreamSession* stream_session(
      const std::string& name) const;

  /// The provenance trail, or nullptr when provenance_dir was empty.
  [[nodiscard]] const audit::ProvenanceLog* provenance_log() const noexcept {
    return provenance_.get();
  }

 private:
  /// Executes one stream-lane job, writes its result line, updates the
  /// summary, and returns the job latency in seconds.
  double handle_stream_job(const Job& job, std::ostream& out,
                           BatchSummary& summary);

  std::unique_ptr<ResultStore> store_;
  std::shared_ptr<store::ArtifactStore> artifacts_;
  std::unique_ptr<Scheduler> scheduler_;
  std::map<std::string, std::unique_ptr<stream::StreamSession>> streams_;
  std::unique_ptr<audit::ProvenanceLog> provenance_;
  bool explain_ = false;
  bool durable_ = false;

  /// --durable batch-boundary fsync of every configured log.
  void sync_durable();
};

}  // namespace graphio::serve
