// BatchSession — JSONL in, JSONL out: the serve subsystem's front door.
//
// run() ingests a jobs file (one request per line, see serve/job.hpp),
// fans it across the Scheduler, and streams one result line per job to
// the output as results complete:
//
//   {"job": 3, "report": {...}}          evaluated request (job = line no)
//   {"job": 7, "error": "unknown …"}     failed request
//
// Malformed lines are rejected as error records without aborting the rest
// of the batch. Result lines are *deterministic*: reports are serialized
// without timing/cache fields, so `sort` of two runs' outputs compares
// byte-identical across thread counts and warm/cold stores. Timing lives
// in the returned BatchSummary (and its to_json footer).
//
// serve() is the interactive sibling: a stdin/stdout request/response
// loop (one JSONL request line in, one result line out, flushed) for
// driving graphio from another process.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "graphio/serve/scheduler.hpp"

namespace graphio::serve {

struct BatchOptions {
  /// Worker threads; 0 means hardware_threads().
  int threads = 0;
  /// Directory for the persistent ResultStore; empty disables it.
  std::string store_dir;
};

struct BatchSummary {
  std::int64_t jobs = 0;           ///< parsed job lines handed to workers
  std::int64_t ok = 0;             ///< jobs that produced a report
  std::int64_t failed = 0;         ///< jobs that errored during evaluation
  std::int64_t rejected_lines = 0; ///< unparseable job lines
  int threads = 0;
  std::int64_t steals = 0;         ///< queue rebalance events
  double seconds = 0.0;            ///< batch wall time
  double throughput = 0.0;         ///< completed jobs per second
  double p50_seconds = 0.0;        ///< median per-job worker latency
  double p95_seconds = 0.0;        ///< 95th-percentile per-job latency
  std::int64_t store_hits = 0;     ///< rows served from the ResultStore
  std::int64_t store_misses = 0;
  engine::ArtifactCache::Stats cache;  ///< artifact activity this batch
  /// Fraction of store lookups served, 0 when the store was off/empty.
  [[nodiscard]] double store_hit_rate() const;
  [[nodiscard]] std::string to_json() const;
};

class BatchSession {
 public:
  /// Opens the store (when configured) and builds the worker pool.
  explicit BatchSession(const BatchOptions& options = {});
  ~BatchSession();

  /// Batch mode: evaluates every JSONL line of `in`, streaming result
  /// lines to `out` as they complete.
  BatchSummary run(std::istream& in, std::ostream& out);

  /// Interactive mode: one request line in, one result line out (flushed
  /// after every response), until EOF. Uses worker 0's Engine only, so
  /// artifacts stay warm across requests.
  BatchSummary serve(std::istream& in, std::ostream& out);

  [[nodiscard]] const ResultStore* store() const noexcept {
    return store_.get();
  }
  [[nodiscard]] Scheduler& scheduler() noexcept { return *scheduler_; }

 private:
  std::unique_ptr<ResultStore> store_;
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace graphio::serve
