// Scheduler — fans a corpus of jobs across a std::thread worker pool.
//
// Independent of OpenMP (support/parallel.hpp) by design: the serve layer
// must parallelize even in no-OpenMP builds, and its workers are long-
// lived request loops, not data-parallel loop bodies. Each worker owns a
// private engine::Engine, so per-spec ArtifactCache reuse (one
// eigendecomposition per graph) is preserved within a worker, and the
// JobQueue's spec-hash sharding sends every job for a given graph to the
// same worker unless stealing rebalances. Workers consult the optional
// shared ResultStore row-by-row before computing, so warm batches touch
// neither the eigensolver nor the flow substrate.
//
// Results are handed to a callback as they complete (any worker thread,
// serialized by an internal mutex) — the BatchSession streams them to the
// output without waiting for the batch. Every job produces exactly one
// JobResult, ok or failed; a worker never throws out of a job.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "graphio/engine/engine.hpp"
#include "graphio/serve/job.hpp"
#include "graphio/serve/result_store.hpp"

namespace graphio::serve {

struct SchedulerOptions {
  /// Worker count; 0 means hardware_threads().
  int threads = 0;
  /// Shared persistent cache; nullptr disables store lookups.
  ResultStore* store = nullptr;
  /// Content-addressed artifact store shared by every worker Engine
  /// (possibly disk-backed, --store-artifacts); the Scheduler creates a
  /// process-private memory-only one when null.
  std::shared_ptr<store::ArtifactStore> artifacts;
  /// Attempts per job for *transient* failures (bounded retry with
  /// exponential backoff). A job still failing transiently after the
  /// last attempt is quarantined (`serve.job.quarantined`); permanent
  /// failures (bad spec, cyclic graph) never retry.
  int max_attempts = 3;
  /// Backoff before the first retry in milliseconds, doubled per retry.
  double backoff_ms = 1.0;
  /// Soft per-job deadline in milliseconds (0 = none), threaded into the
  /// spectral pipeline as SpectralOptions::deadline_seconds: over-budget
  /// component solves are skipped and the job returns a certified partial
  /// bound flagged degraded:true instead of hanging.
  std::int64_t job_timeout_ms = 0;
};

/// Store-backed evaluation, shared by the worker path and the stream
/// lane: per (method, M) rows are resolved from `store` under
/// `fingerprint` (all-or-nothing per method across the memory sweep),
/// methods with any missing row are computed through `evaluate`, and the
/// fresh converged rows are persisted. The assembled report mixes stored
/// and fresh rows in method-selection order — byte-identical to a fully
/// computed one under the deterministic serialization. `fingerprint` is
/// whatever durable identity the caller keys rows by: the whole-graph
/// content hash for spec/explicit-graph jobs, the order-independent
/// component-multiset session fingerprint for stream queries (a graph
/// that reverts to a prior state re-keys to — and hits — the prior
/// rows).
/// A non-null `storeable` predicate exempts methods from the store
/// entirely (computed fresh, never persisted, never counted hit/miss) —
/// the stream lane uses it to keep vertex-numbering-sensitive rows out
/// of its numbering-agnostic multiset keys.
engine::BoundReport evaluate_with_store(
    ResultStore& store, std::uint64_t fingerprint,
    const engine::BoundRequest& request, const std::string& display_name,
    std::int64_t vertices, std::int64_t edges,
    const std::function<engine::BoundReport(const engine::BoundRequest&)>&
        evaluate,
    std::int64_t* store_hits, std::int64_t* store_misses,
    const std::function<bool(std::string_view)>& storeable = nullptr);

struct JobResult {
  std::int64_t id = 0;
  bool ok = false;
  /// Failure reason when !ok (bad spec, unknown method, cyclic graph…).
  std::string error;
  /// Structured failure taxonomy when !ok: "transient", "io", "fatal"…
  /// from an injected fault's kind, "error" for ordinary exceptions.
  std::string error_kind;
  /// Fault site that produced the failure ("" for ordinary exceptions).
  std::string error_site;
  /// Evaluation attempts consumed (1 = first try; >1 means retried).
  int attempts = 1;
  /// True when the job kept failing transiently through max_attempts and
  /// was quarantined instead of retried forever.
  bool quarantined = false;
  engine::BoundReport report;
  /// Worker wall time spent on this job (store lookups included).
  double seconds = 0.0;
  /// Rows served from / missed in the persistent store for this job.
  std::int64_t store_hits = 0;
  std::int64_t store_misses = 0;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& options = {});

  /// Telemetry for one run() call.
  struct RunStats {
    int threads = 0;
    std::int64_t jobs = 0;
    std::int64_t steals = 0;
    double seconds = 0.0;
    /// Artifact activity across every worker Engine during this run
    /// (hits/misses/eigensolves/mincut_sweeps deltas).
    engine::ArtifactCache::Stats cache;
  };

  /// Runs every job to completion; `on_result` fires once per job, from
  /// worker threads, serialized (never concurrently). Worker Engines and
  /// their artifact caches persist across run() calls, so a long-lived
  /// serve loop keeps its spectra warm between batches.
  RunStats run(std::vector<Job> jobs,
               const std::function<void(const JobResult&)>& on_result);

  /// Evaluates one job on the calling thread with worker 0's Engine —
  /// the synchronous path behind the `graphio serve` stdin/stdout loop.
  JobResult run_one(const Job& job);

  [[nodiscard]] int threads() const noexcept {
    return static_cast<int>(engines_.size());
  }

  /// Lifetime artifact totals summed across every worker Engine.
  [[nodiscard]] engine::ArtifactCache::Stats engine_stats() const;

 private:
  JobResult evaluate_job(engine::Engine& engine, const Job& job,
                         std::size_t worker) const;

  std::vector<std::unique_ptr<engine::Engine>> engines_;
  ResultStore* store_ = nullptr;
  int max_attempts_ = 3;
  double backoff_ms_ = 1.0;
  std::int64_t job_timeout_ms_ = 0;
};

}  // namespace graphio::serve
