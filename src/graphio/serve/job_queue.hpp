// JobQueue — sharded deques with work stealing for the serve Scheduler.
//
// Jobs are sharded by graph-spec hash, one deque per worker, so every
// request for the same spec lands on the same worker and reuses that
// worker's per-spec ArtifactCache (one eigendecomposition per graph no
// matter how many jobs sweep it). A worker that drains its own shard
// steals from the *back* of the busiest other shard — the classic
// Blumofe–Leiserson arrangement: owners pop recent jobs (warm cache),
// thieves take the oldest ones (most likely a spec the owner has not
// started), so stealing costs at most one redundant artifact build.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "graphio/serve/job.hpp"

namespace graphio::serve {

class JobQueue {
 public:
  /// One shard per worker; `workers` must be >= 1.
  explicit JobQueue(int workers);

  /// Enqueues onto the shard owning the job's spec (hash-affine). Not
  /// thread-safe against pop(): fill the queue before starting workers.
  void push(Job job);

  /// Enqueues onto a specific shard (tests / custom placement).
  void push_to_shard(std::size_t shard, Job job);

  /// Pops the next job for `worker`: front of its own shard, else back of
  /// the fullest other shard. Returns false when every shard is empty —
  /// the batch is done (jobs never enqueue more jobs). Thread-safe.
  bool pop(std::size_t worker, Job& out);

  [[nodiscard]] std::size_t shards() const noexcept {
    return shards_.size();
  }
  /// Jobs stolen across shards so far (scheduler telemetry).
  [[nodiscard]] std::int64_t steals() const noexcept;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::deque<Job> jobs;
  };

  std::size_t shard_of(const Job& job) const noexcept;

  std::vector<Shard> shards_;
  mutable std::mutex steals_mutex_;
  std::int64_t steals_ = 0;
};

}  // namespace graphio::serve
