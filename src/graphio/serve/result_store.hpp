// ResultStore — persistent on-disk cache of evaluated bound rows.
//
// Every computed (graph, method, M) cell is appended to a JSONL log under
// the store directory and indexed in memory, so repeated sweeps over a
// corpus hit disk instead of recomputing eigen-spectra: a warm rerun of a
// whole batch performs zero eigensolves (certified by the serve tests).
//
// Keys are content-addressed: the graph's structural fingerprint
// (engine/fingerprint.hpp), the method id, the memory size, and the
// request knobs that change results for some method (processors for
// "parallel", sim_random_orders for "memsim", the solver policy and
// decomposition switch for the spectral families). Other per-method
// options (min-cut budgets etc.) are NOT part of the key — the serve
// layer always evaluates those with defaults; drivers tuning them should
// point each configuration at its own store directory.
//
// The log is append-only and crash-tolerant: unparseable lines (e.g. a
// torn final line after a crash) are counted and skipped on load, and the
// next insert simply appends after them.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "graphio/engine/method.hpp"

namespace graphio::serve {

class ResultStore {
 public:
  struct Key {
    std::uint64_t graph_fingerprint = 0;
    std::string method;
    double memory = 0.0;
    std::int64_t processors = 1;
    int sim_random_orders = 4;
    /// Solver policy for the spectral families ("" for other methods, so
    /// their rows serve every solver setting).
    std::string solver;
    /// Per-component decomposition switch (spectral families only).
    bool decompose = true;
  };

  /// Opens (creating the directory if needed) and replays `dir/results.jsonl`.
  /// Throws contract_error when the directory cannot be created or the log
  /// cannot be opened for append.
  explicit ResultStore(const std::filesystem::path& dir);

  /// The cached row for a key, or nullopt. Thread-safe; counts a hit/miss.
  std::optional<engine::MethodRow> lookup(const Key& key);

  /// Records a computed row: appends one JSONL line and indexes it. A key
  /// already present is ignored (first write wins, matching lookup).
  /// Thread-safe. A disk write failure demotes the store to memory-only
  /// (the in-process index keeps serving; the log is never corrupted).
  void insert(const Key& key, const engine::MethodRow& row);

  /// Flushes and fsyncs the log (no-op when demoted). Called at batch
  /// boundaries under `--durable`.
  void sync();

  struct Stats {
    std::int64_t loaded = 0;     ///< rows replayed from disk at startup
    std::int64_t corrupt = 0;    ///< log lines skipped as unparseable
    std::int64_t hits = 0;       ///< lookups served
    std::int64_t misses = 0;     ///< lookups that found nothing
    std::int64_t appended = 0;   ///< rows written this session
    bool demoted = false;        ///< disk writes disabled after a failure
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return log_path_;
  }

 private:
  static std::string encode_key(const Key& key);
  void demote_locked(const std::string& why);

  mutable std::mutex mutex_;
  std::filesystem::path log_path_;
  std::ofstream log_;
  std::unordered_map<std::string, engine::MethodRow> rows_;
  Stats stats_;
  bool demoted_ = false;
};

}  // namespace graphio::serve
