#include "graphio/serve/batch_session.hpp"

#include <algorithm>
#include <filesystem>
#include <istream>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "graphio/faults/fault_injection.hpp"
#include "graphio/io/json.hpp"
#include "graphio/support/timer.hpp"

namespace graphio::serve {

namespace {

/// Any row served from a deadline- or fault-degraded evaluation. The
/// result line surfaces this at the top level so a consumer can tell
/// "sound but weaker" apart from full-strength bounds without walking
/// the rows.
bool report_degraded(const engine::BoundReport& report) {
  for (const engine::MethodRow& row : report.rows)
    if (row.degraded) return true;
  return false;
}

void write_result_line(std::ostream& out, const JobResult& result,
                       bool explain) {
  io::JsonWriter w;
  w.begin_object();
  w.key("job").value(result.id);
  if (result.ok) {
    w.key("report");
    result.report.append_json(w, /*include_timing=*/false,
                              /*include_provenance=*/explain);
    if (report_degraded(result.report)) w.key("degraded").value(true);
  } else {
    w.key("error").begin_object();
    w.key("kind").value(result.error_kind.empty() ? std::string("error")
                                                  : result.error_kind);
    if (!result.error_site.empty()) w.key("site").value(result.error_site);
    w.key("attempts").value(static_cast<std::int64_t>(result.attempts));
    if (result.quarantined) w.key("quarantined").value(true);
    w.key("message").value(result.error);
    w.end_object();
  }
  w.end_object();
  out << w.str() << '\n';
}

/// Structured error line for jobs that never reached the scheduler:
/// unparseable input lines (kind "reject") and stream-lane failures
/// (the injected fault's kind/site when one fired, "error" otherwise).
void write_reject_line(std::ostream& out, std::int64_t line_no,
                       const std::string& what,
                       const std::string& kind = "reject",
                       const std::string& site = "") {
  io::JsonWriter w;
  w.begin_object();
  w.key("job").value(line_no);
  w.key("error").begin_object();
  w.key("kind").value(kind);
  if (!site.empty()) w.key("site").value(site);
  w.key("message").value(what);
  w.end_object();
  w.end_object();
  out << w.str() << '\n';
}

/// Deterministic stream result line ({"job": N, "load"/"patch": {...}}):
/// structural counts and the session fingerprint, no wall-clock fields.
void write_stream_line(std::ostream& out, std::int64_t job_id,
                       std::string_view kind,
                       const stream::PatchReport& report) {
  io::JsonWriter w;
  w.begin_object();
  w.key("job").value(job_id);
  w.key(kind).begin_object();
  w.key("graph").value(report.graph);
  if (!report.label.empty()) w.key("label").value(report.label);
  w.key("mutations").value(report.mutations);
  w.key("vertices").value(report.vertices);
  w.key("edges").value(report.edges);
  w.key("components").value(static_cast<std::int64_t>(report.components));
  w.key("dirty").value(static_cast<std::int64_t>(report.dirty_components));
  w.key("clean").value(static_cast<std::int64_t>(report.clean_components));
  w.key("evicted").value(report.evicted);
  w.key("fingerprint").value(report.fingerprint);
  w.end_object();
  w.end_object();
  out << w.str() << '\n';
}

double percentile(std::vector<double> sorted_or_not, double p) {
  if (sorted_or_not.empty()) return 0.0;
  std::sort(sorted_or_not.begin(), sorted_or_not.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_or_not.size() - 1) + 0.5);
  return sorted_or_not[std::min(rank, sorted_or_not.size() - 1)];
}

/// Process-wide per-job latency histogram — every lane (scheduler
/// workers, stream jobs, serve loop) observes into the same one, and a
/// run's summary carries the bracketing snapshot delta.
telemetry::Histogram& job_latency_histogram() {
  static telemetry::Histogram& h =
      telemetry::MetricsRegistry::global().histogram("serve.job.seconds");
  return h;
}

}  // namespace

double BatchSummary::store_hit_rate() const {
  const std::int64_t total = store_hits + store_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(store_hits) /
                          static_cast<double>(total);
}

std::string BatchSummary::to_json() const {
  io::JsonWriter w;
  w.begin_object();
  w.key("jobs").value(jobs);
  w.key("ok").value(ok);
  w.key("failed").value(failed);
  w.key("rejected_lines").value(rejected_lines);
  w.key("retried").value(retried);
  w.key("quarantined").value(quarantined);
  w.key("degraded").value(degraded);
  w.key("threads").value(threads);
  w.key("steals").value(steals);
  w.key("seconds").value(seconds);
  w.key("throughput").value(throughput);
  w.key("p50_seconds").value(p50_seconds);
  w.key("p95_seconds").value(p95_seconds);
  w.key("p99_seconds").value(p99_seconds);
  w.key("latency").begin_object();
  w.key("count").value(latency.count);
  w.key("sum_seconds").value(latency.sum);
  w.key("buckets").begin_array();
  for (std::size_t i = 0; i < latency.counts.size(); ++i) {
    if (latency.counts[i] == 0) continue;
    w.begin_object();
    if (i < latency.bounds.size())
      w.key("le").value(latency.bounds[i]);
    else
      w.key("le").value("+inf");
    w.key("count").value(latency.counts[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("store").begin_object();
  w.key("hits").value(store_hits);
  w.key("misses").value(store_misses);
  w.key("hit_rate").value(store_hit_rate());
  w.end_object();
  w.key("cache").begin_object();
  w.key("hits").value(cache.hits);
  w.key("misses").value(cache.misses);
  w.key("eigensolves").value(cache.eigensolves);
  w.key("mincut_sweeps").value(cache.mincut_sweeps);
  w.key("topo_computes").value(cache.topo_computes);
  w.key("memsim_runs").value(cache.memsim_runs);
  w.key("partition_runs").value(cache.partition_runs);
  w.key("component_hits").value(cache.component_hits);
  w.key("subgraph_extractions").value(cache.subgraph_extractions);
  w.key("fingerprint_computes").value(cache.fingerprint_computes);
  w.key("warm_hits").value(cache.warm_hits);
  w.key("warm_iterations_saved").value(cache.warm_iterations_saved);
  w.end_object();
  w.key("stream").begin_object();
  w.key("jobs").value(stream_jobs);
  w.key("patches").value(patches);
  w.key("mutations").value(mutations);
  w.key("dirty_components").value(dirty_components);
  w.key("clean_components").value(clean_components);
  w.end_object();
  w.end_object();
  return w.str();
}

BatchSession::BatchSession(const BatchOptions& options) {
  if (!options.store_dir.empty())
    store_ = std::make_unique<ResultStore>(options.store_dir);
  // One artifact store for the whole session: worker Engines and stream
  // sessions all resolve per-component artifacts from it, and with
  // artifact_dir set its disk tier makes them survive restarts.
  artifacts_ = options.artifact_dir.empty()
                   ? std::make_shared<store::ArtifactStore>()
                   : std::make_shared<store::ArtifactStore>(
                         std::filesystem::path(options.artifact_dir));
  // Stream sessions read the budget to decide whether to retain bases
  // and warm-start patched components (stream/session.cpp).
  artifacts_->set_eigenbasis_budget(options.warm_basis_mb << 20);
  telemetry::MetricsRegistry::global()
      .gauge("store.eigenbasis.budget_bytes")
      .set(static_cast<double>(artifacts_->eigenbasis_budget()));
  SchedulerOptions scheduler_options;
  scheduler_options.threads = options.threads;
  scheduler_options.store = store_.get();
  scheduler_options.artifacts = artifacts_;
  scheduler_options.max_attempts = options.max_attempts;
  scheduler_options.backoff_ms = options.backoff_ms;
  scheduler_options.job_timeout_ms = options.job_timeout_ms;
  scheduler_ = std::make_unique<Scheduler>(scheduler_options);
  if (!options.provenance_dir.empty())
    provenance_ = std::make_unique<audit::ProvenanceLog>(
        std::filesystem::path(options.provenance_dir));
  explain_ = options.explain;
  durable_ = options.durable;
}

void BatchSession::sync_durable() {
  if (!durable_) return;
  if (store_ != nullptr) store_->sync();
  if (artifacts_ != nullptr) artifacts_->sync();
  if (provenance_ != nullptr) provenance_->sync();
}

BatchSession::~BatchSession() = default;

const stream::StreamSession* BatchSession::stream_session(
    const std::string& name) const {
  const auto it = streams_.find(name);
  return it == streams_.end() ? nullptr : it->second.get();
}

double BatchSession::handle_stream_job(const Job& job, std::ostream& out,
                                       BatchSummary& summary) {
  WallTimer timer;
  ++summary.jobs;
  ++summary.stream_jobs;
  try {
    if (job.kind == JobKind::kLoad) {
      auto it = streams_.find(job.graph);
      if (it == streams_.end()) {
        // The constructor validates the name (must not collide with a
        // family spec); a bad name rejects this line only.
        it = streams_
                 .emplace(job.graph, std::make_unique<stream::StreamSession>(
                                         job.graph, artifacts_))
                 .first;
      }
      const stream::PatchReport report = it->second->load(job.load_spec);
      ++summary.patches;
      write_stream_line(out, job.id, "load", report);
      ++summary.ok;
      return timer.seconds();
    }

    const auto it = streams_.find(job.graph);
    GIO_EXPECTS_MSG(it != streams_.end(),
                    "unknown stream graph '" + job.graph +
                        "' — load it first ({\"graph\": \"" + job.graph +
                        "\", \"load\": SPEC})");
    stream::StreamSession& session = *it->second;
    if (job.kind == JobKind::kPatch) {
      const stream::PatchReport report = session.apply(job.patch);
      ++summary.patches;
      summary.mutations += report.mutations;
      summary.dirty_components += report.dirty_components;
      summary.clean_components += report.clean_components;
      write_stream_line(out, job.id, "patch", report);
      ++summary.ok;
      return timer.seconds();
    }

    JobResult result;
    result.id = job.id;
    result.ok = true;
    if (store_ == nullptr) {
      result.report = session.evaluate(job.request);
    } else {
      // An evolving graph's durable identity is its *state*: the
      // order-independent component-multiset fingerprint the session
      // maintains incrementally. Keying rows by it means a graph that
      // reverts to a prior state (patch + inverse patch) re-keys to the
      // prior rows and hits the disk store — zero eigensolves even
      // though the dirty components' spectra were evicted in between.
      // The key is numbering-agnostic (isomorphic states share it), so
      // only isomorphism-invariant rows may live under it: memsim
      // simulates schedules that tie-break on vertex ids, and stays out.
      result.report = evaluate_with_store(
          *store_, session.fingerprint(), job.request, session.name(),
          session.num_vertices(), session.num_edges(),
          [&session](const engine::BoundRequest& sub) {
            return session.evaluate(sub);
          },
          &result.store_hits, &result.store_misses,
          [](std::string_view method) { return method != "memsim"; });
      summary.store_hits += result.store_hits;
      summary.store_misses += result.store_misses;
    }
    summary.cache += result.report.cache;
    // Stream records replay from the updates file (the mutations matter,
    // not just the final query), but the query itself is still recorded.
    result.report.provenance.request = request_to_json_line(job.request);
    if (provenance_ != nullptr) provenance_->append(result.report.provenance);
    write_result_line(out, result, explain_);
    if (report_degraded(result.report)) ++summary.degraded;
    ++summary.ok;
  } catch (const faults::FaultInjected& e) {
    // Injected mid-patch fault: the session already rolled the journal
    // back, so the graph is exactly its pre-patch state.
    write_reject_line(out, job.id, e.what(), e.kind(), e.site());
    ++summary.failed;
  } catch (const std::exception& e) {
    write_reject_line(out, job.id, e.what(), "error");
    ++summary.failed;
  }
  return timer.seconds();
}

BatchSummary BatchSession::run(std::istream& in, std::ostream& out) {
  BatchSummary summary;
  WallTimer timer;
  const telemetry::HistogramSnapshot latency_before =
      job_latency_histogram().snapshot();

  // Ingest first: rejected lines are reported up front (in line order),
  // valid bound jobs go to the queue. Stream jobs are stateful, so they
  // execute *during* ingest, in file order — each stream query sees
  // exactly the loads/patches above it, while the spec jobs they
  // interleave with still fan out across workers below. Job ids are
  // 1-based line numbers so the caller can join results back to the
  // jobs file.
  std::vector<double> latencies;
  std::vector<Job> jobs;
  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;  // blank line
    if (line[start] == '#') continue;          // comment line
    Job job;
    try {
      job = job_from_json_line(line);
    } catch (const std::exception& e) {
      ++summary.rejected_lines;
      write_reject_line(out, line_no, e.what());
      continue;
    }
    job.id = line_no;
    if (job.is_stream()) {
      const double seconds = handle_stream_job(job, out, summary);
      job_latency_histogram().observe(seconds);
      latencies.push_back(seconds);
      continue;
    }
    jobs.push_back(std::move(job));
  }
  summary.jobs += static_cast<std::int64_t>(jobs.size());

  latencies.reserve(latencies.size() + jobs.size());
  const Scheduler::RunStats stats = scheduler_->run(
      std::move(jobs), [&](const JobResult& result) {
        // Serialized by the scheduler's result mutex.
        if (result.ok && provenance_ != nullptr)
          provenance_->append(result.report.provenance);
        write_result_line(out, result, explain_);
        job_latency_histogram().observe(result.seconds);
        latencies.push_back(result.seconds);
        summary.retried += result.attempts - 1;
        if (result.quarantined) ++summary.quarantined;
        if (result.ok) {
          ++summary.ok;
          if (report_degraded(result.report)) ++summary.degraded;
        } else {
          ++summary.failed;
        }
        summary.store_hits += result.store_hits;
        summary.store_misses += result.store_misses;
      });

  summary.threads = stats.threads;
  summary.steals = stats.steals;
  // += : stream queries already contributed their engines' deltas.
  summary.cache += stats.cache;
  summary.seconds = timer.seconds();
  summary.throughput =
      summary.seconds > 0.0
          ? static_cast<double>(summary.ok + summary.failed) /
                summary.seconds
          : 0.0;
  summary.p50_seconds = percentile(latencies, 0.50);
  summary.p95_seconds = percentile(latencies, 0.95);
  summary.latency = job_latency_histogram().snapshot() - latency_before;
  summary.p99_seconds = summary.latency.percentile(0.99);
  sync_durable();
  return summary;
}

BatchSummary BatchSession::serve(std::istream& in, std::ostream& out) {
  BatchSummary summary;
  summary.threads = 1;
  WallTimer timer;
  const telemetry::HistogramSnapshot latency_before =
      job_latency_histogram().snapshot();
  std::vector<double> latencies;
  const engine::ArtifactCache::Stats before = scheduler_->engine_stats();

  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    Job job;
    try {
      job = job_from_json_line(line);
    } catch (const std::exception& e) {
      ++summary.rejected_lines;
      write_reject_line(out, line_no, e.what());
      out.flush();
      continue;
    }
    job.id = line_no;
    if (job.is_stream()) {
      const double stream_seconds = handle_stream_job(job, out, summary);
      job_latency_histogram().observe(stream_seconds);
      latencies.push_back(stream_seconds);
      out.flush();
      continue;
    }
    ++summary.jobs;
    const JobResult result = scheduler_->run_one(job);
    if (result.ok && provenance_ != nullptr)
      provenance_->append(result.report.provenance);
    write_result_line(out, result, explain_);
    out.flush();
    job_latency_histogram().observe(result.seconds);
    latencies.push_back(result.seconds);
    summary.retried += result.attempts - 1;
    if (result.quarantined) ++summary.quarantined;
    if (result.ok) {
      ++summary.ok;
      if (report_degraded(result.report)) ++summary.degraded;
    } else {
      ++summary.failed;
    }
    summary.store_hits += result.store_hits;
    summary.store_misses += result.store_misses;
  }

  // += : stream queries already contributed their engines' deltas.
  summary.cache += scheduler_->engine_stats() - before;
  summary.seconds = timer.seconds();
  summary.throughput =
      summary.seconds > 0.0
          ? static_cast<double>(summary.ok + summary.failed) /
                summary.seconds
          : 0.0;
  summary.p50_seconds = percentile(latencies, 0.50);
  summary.p95_seconds = percentile(latencies, 0.95);
  summary.latency = job_latency_histogram().snapshot() - latency_before;
  summary.p99_seconds = summary.latency.percentile(0.99);
  sync_durable();
  return summary;
}

}  // namespace graphio::serve
