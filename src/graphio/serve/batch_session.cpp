#include "graphio/serve/batch_session.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "graphio/io/json.hpp"
#include "graphio/support/timer.hpp"

namespace graphio::serve {

namespace {

void write_result_line(std::ostream& out, const JobResult& result) {
  io::JsonWriter w;
  w.begin_object();
  w.key("job").value(result.id);
  if (result.ok) {
    w.key("report");
    result.report.append_json(w, /*include_timing=*/false);
  } else {
    w.key("error").value(result.error);
  }
  w.end_object();
  out << w.str() << '\n';
}

void write_reject_line(std::ostream& out, std::int64_t line_no,
                       const std::string& what) {
  io::JsonWriter w;
  w.begin_object();
  w.key("job").value(line_no);
  w.key("error").value(what);
  w.end_object();
  out << w.str() << '\n';
}

double percentile(std::vector<double> sorted_or_not, double p) {
  if (sorted_or_not.empty()) return 0.0;
  std::sort(sorted_or_not.begin(), sorted_or_not.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_or_not.size() - 1) + 0.5);
  return sorted_or_not[std::min(rank, sorted_or_not.size() - 1)];
}

}  // namespace

double BatchSummary::store_hit_rate() const {
  const std::int64_t total = store_hits + store_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(store_hits) /
                          static_cast<double>(total);
}

std::string BatchSummary::to_json() const {
  io::JsonWriter w;
  w.begin_object();
  w.key("jobs").value(jobs);
  w.key("ok").value(ok);
  w.key("failed").value(failed);
  w.key("rejected_lines").value(rejected_lines);
  w.key("threads").value(threads);
  w.key("steals").value(steals);
  w.key("seconds").value(seconds);
  w.key("throughput").value(throughput);
  w.key("p50_seconds").value(p50_seconds);
  w.key("p95_seconds").value(p95_seconds);
  w.key("store").begin_object();
  w.key("hits").value(store_hits);
  w.key("misses").value(store_misses);
  w.key("hit_rate").value(store_hit_rate());
  w.end_object();
  w.key("cache").begin_object();
  w.key("hits").value(cache.hits);
  w.key("misses").value(cache.misses);
  w.key("eigensolves").value(cache.eigensolves);
  w.key("mincut_sweeps").value(cache.mincut_sweeps);
  w.key("component_hits").value(cache.component_hits);
  w.end_object();
  w.end_object();
  return w.str();
}

BatchSession::BatchSession(const BatchOptions& options) {
  if (!options.store_dir.empty())
    store_ = std::make_unique<ResultStore>(options.store_dir);
  SchedulerOptions scheduler_options;
  scheduler_options.threads = options.threads;
  scheduler_options.store = store_.get();
  scheduler_ = std::make_unique<Scheduler>(scheduler_options);
}

BatchSession::~BatchSession() = default;

BatchSummary BatchSession::run(std::istream& in, std::ostream& out) {
  BatchSummary summary;
  WallTimer timer;

  // Ingest first: rejected lines are reported up front (in line order),
  // valid jobs go to the queue. Job ids are 1-based line numbers so the
  // caller can join results back to the jobs file.
  std::vector<Job> jobs;
  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;  // blank line
    if (line[start] == '#') continue;          // comment line
    Job job;
    job.id = line_no;
    try {
      job.request = request_from_json_line(line);
    } catch (const std::exception& e) {
      ++summary.rejected_lines;
      write_reject_line(out, line_no, e.what());
      continue;
    }
    jobs.push_back(std::move(job));
  }
  summary.jobs = static_cast<std::int64_t>(jobs.size());

  std::vector<double> latencies;
  latencies.reserve(jobs.size());
  const Scheduler::RunStats stats = scheduler_->run(
      std::move(jobs), [&](const JobResult& result) {
        // Serialized by the scheduler's result mutex.
        write_result_line(out, result);
        latencies.push_back(result.seconds);
        if (result.ok) ++summary.ok;
        else ++summary.failed;
        summary.store_hits += result.store_hits;
        summary.store_misses += result.store_misses;
      });

  summary.threads = stats.threads;
  summary.steals = stats.steals;
  summary.cache = stats.cache;
  summary.seconds = timer.seconds();
  summary.throughput =
      summary.seconds > 0.0
          ? static_cast<double>(summary.ok + summary.failed) /
                summary.seconds
          : 0.0;
  summary.p50_seconds = percentile(latencies, 0.50);
  summary.p95_seconds = percentile(latencies, 0.95);
  return summary;
}

BatchSummary BatchSession::serve(std::istream& in, std::ostream& out) {
  BatchSummary summary;
  summary.threads = 1;
  WallTimer timer;
  std::vector<double> latencies;
  const engine::ArtifactCache::Stats before = scheduler_->engine_stats();

  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    Job job;
    job.id = line_no;
    try {
      job.request = request_from_json_line(line);
    } catch (const std::exception& e) {
      ++summary.rejected_lines;
      write_reject_line(out, line_no, e.what());
      out.flush();
      continue;
    }
    ++summary.jobs;
    const JobResult result = scheduler_->run_one(job);
    write_result_line(out, result);
    out.flush();
    latencies.push_back(result.seconds);
    if (result.ok) ++summary.ok;
    else ++summary.failed;
    summary.store_hits += result.store_hits;
    summary.store_misses += result.store_misses;
  }

  summary.cache = scheduler_->engine_stats() - before;
  summary.seconds = timer.seconds();
  summary.throughput =
      summary.seconds > 0.0
          ? static_cast<double>(summary.ok + summary.failed) /
                summary.seconds
          : 0.0;
  summary.p50_seconds = percentile(latencies, 0.50);
  summary.p95_seconds = percentile(latencies, 0.95);
  return summary;
}

}  // namespace graphio::serve
