#include "graphio/serve/job_queue.hpp"

#include <functional>
#include <utility>

#include "graphio/support/contracts.hpp"

namespace graphio::serve {

JobQueue::JobQueue(int workers)
    : shards_(static_cast<std::size_t>(workers)) {
  GIO_EXPECTS(workers >= 1);
}

std::size_t JobQueue::shard_of(const Job& job) const noexcept {
  return std::hash<std::string>{}(job.request.spec) % shards_.size();
}

void JobQueue::push(Job job) { push_to_shard(shard_of(job), std::move(job)); }

void JobQueue::push_to_shard(std::size_t shard, Job job) {
  GIO_EXPECTS(shard < shards_.size());
  const std::lock_guard<std::mutex> lock(shards_[shard].mutex);
  shards_[shard].jobs.push_back(std::move(job));
}

bool JobQueue::pop(std::size_t worker, Job& out) {
  GIO_EXPECTS(worker < shards_.size());
  {
    Shard& own = shards_[worker];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.jobs.empty()) {
      out = std::move(own.jobs.front());
      own.jobs.pop_front();
      return true;
    }
  }
  // Steal from the fullest other shard. Sizes are sampled without their
  // locks (stale values only cost an extra probe), then the candidate is
  // re-checked under its lock.
  for (;;) {
    std::size_t victim = shards_.size();
    std::size_t victim_size = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (s == worker) continue;
      const std::lock_guard<std::mutex> lock(shards_[s].mutex);
      if (shards_[s].jobs.size() > victim_size) {
        victim = s;
        victim_size = shards_[s].jobs.size();
      }
    }
    if (victim == shards_.size()) return false;  // everything is empty
    const std::lock_guard<std::mutex> lock(shards_[victim].mutex);
    if (shards_[victim].jobs.empty()) continue;  // lost the race; rescan
    out = std::move(shards_[victim].jobs.back());
    shards_[victim].jobs.pop_back();
    const std::lock_guard<std::mutex> steal_lock(steals_mutex_);
    ++steals_;
    return true;
  }
}

std::int64_t JobQueue::steals() const noexcept {
  const std::lock_guard<std::mutex> lock(steals_mutex_);
  return steals_;
}

}  // namespace graphio::serve
