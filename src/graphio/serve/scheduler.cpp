#include "graphio/serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "graphio/engine/fingerprint.hpp"
#include "graphio/faults/fault_injection.hpp"
#include "graphio/serve/job_queue.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/parallel.hpp"
#include "graphio/support/timer.hpp"
#include "graphio/telemetry/metrics.hpp"
#include "graphio/telemetry/trace.hpp"

namespace graphio::serve {

namespace {

struct JobMetrics {
  telemetry::Counter& failed;
  telemetry::Counter& retried;
  telemetry::Counter& quarantined;
};

JobMetrics& job_metrics() {
  static JobMetrics metrics{
      telemetry::MetricsRegistry::global().counter("serve.job.failed"),
      telemetry::MetricsRegistry::global().counter("serve.job.retried"),
      telemetry::MetricsRegistry::global().counter("serve.job.quarantined")};
  return metrics;
}

/// The store key for one (request, method, memory) cell. processors,
/// sim_random_orders, and the spectral solver knobs only key the methods
/// whose results they change, so e.g. a "spectral" row computed under a
/// processors=4 request still serves later processors=1 requests, and a
/// "mincut" row serves every solver setting.
ResultStore::Key store_key(std::uint64_t fingerprint,
                           const engine::BoundRequest& request,
                           std::string_view method, double memory) {
  ResultStore::Key key;
  key.graph_fingerprint = fingerprint;
  key.method = std::string(method);
  key.memory = memory;
  key.processors = method == "parallel" ? request.processors : 1;
  key.sim_random_orders =
      method == "memsim" ? request.sim_random_orders : 0;
  if (method == "spectral" || method == "spectral-plain" ||
      method == "parallel") {
    key.solver = request.spectral.solver;
    key.decompose = request.spectral.decompose;
  }
  return key;
}

}  // namespace

engine::BoundReport evaluate_with_store(
    ResultStore& store, std::uint64_t fingerprint,
    const engine::BoundRequest& request, const std::string& display_name,
    std::int64_t vertices, std::int64_t edges,
    const std::function<engine::BoundReport(const engine::BoundRequest&)>&
        evaluate,
    std::int64_t* store_hits, std::int64_t* store_misses,
    const std::function<bool(std::string_view)>& storeable) {
  GIO_EXPECTS_MSG(!request.memories.empty(),
                  "request needs at least one memory size");
  const std::vector<const engine::BoundMethod*> selected =
      engine::select_methods(request);

  // Per-method: either every (method, M) row is on disk, or the whole
  // sweep is recomputed (the sweep shares one spectrum/cut anyway and
  // partial hits are rare — they only happen when the memory list
  // changed between runs). Methods the caller declares non-storeable
  // bypass the store both ways.
  std::vector<std::vector<engine::MethodRow>> stored(selected.size());
  std::vector<std::string> missed;
  for (std::size_t s = 0; s < selected.size(); ++s) {
    const std::string id(selected[s]->id());
    if (storeable != nullptr && !storeable(id)) {
      missed.push_back(id);
      continue;
    }
    std::vector<engine::MethodRow> rows;
    rows.reserve(request.memories.size());
    for (double m : request.memories) {
      auto row = store.lookup(store_key(fingerprint, request, id, m));
      if (!row.has_value()) break;
      rows.push_back(std::move(*row));
    }
    if (rows.size() == request.memories.size()) {
      *store_hits += static_cast<std::int64_t>(request.memories.size());
      stored[s] = std::move(rows);
    } else {
      *store_misses += static_cast<std::int64_t>(request.memories.size());
      missed.push_back(id);
    }
  }

  engine::BoundReport computed;
  if (!missed.empty()) {
    engine::BoundRequest sub = request;
    sub.methods = missed;
    computed = evaluate(sub);
    // Only persist converged rows. Non-converged covers methods that
    // threw (possibly transiently: the Engine marks exception rows
    // converged=false), time-budget-cut min-cut sweeps, and partial
    // spectra — caching any of those would serve a degraded or stale
    // answer forever. Deterministic inapplicability verdicts ("graph
    // is cyclic", "exceeds 21 vertices") stay converged and cached,
    // preserving 100% warm-run hit rates.
    for (const engine::MethodRow& row : computed.rows)
      if (row.converged &&
          (storeable == nullptr || storeable(row.method)))
        store.insert(store_key(fingerprint, request, row.method, row.memory),
                     row);
  }

  // Assemble the report in selection order, mixing stored and fresh
  // rows; the deterministic serialization of both forms is identical.
  engine::BoundReport report;
  report.graph = display_name;
  report.vertices = vertices;
  report.edges = edges;
  report.processors = request.processors;
  report.memories = request.memories;
  report.cache = computed.cache;  // zero when fully warm
  // Lineage: the computed sub-evaluation's spectra and registry deltas
  // carry over verbatim (empty when fully warm); the row lineage is
  // rebuilt below so store-served rows are labeled as such.
  report.provenance = std::move(computed.provenance);
  report.provenance.graph = display_name;
  report.provenance.fingerprint = fingerprint;
  report.provenance.rows.clear();
  for (std::size_t s = 0; s < selected.size(); ++s) {
    const bool from_store = !stored[s].empty();
    std::vector<const engine::MethodRow*> method_rows;
    if (from_store) {
      for (engine::MethodRow& row : stored[s]) method_rows.push_back(&row);
    } else {
      method_rows = computed.rows_for(selected[s]->id());
    }
    for (const engine::MethodRow* row : method_rows) {
      audit::RowLineage lineage;
      lineage.method = row->method;
      lineage.memory = row->memory;
      lineage.processors = row->processors;
      lineage.applicable = row->applicable;
      lineage.bound = row->value;
      lineage.best_k = row->best_k;
      lineage.converged = row->converged;
      lineage.degraded = row->degraded;
      lineage.source = from_store ? "store" : "computed";
      report.provenance.rows.push_back(std::move(lineage));
      report.rows.push_back(*row);
    }
  }
  return report;
}

Scheduler::Scheduler(const SchedulerOptions& options)
    : store_(options.store),
      max_attempts_(std::max(1, options.max_attempts)),
      backoff_ms_(std::max(0.0, options.backoff_ms)),
      job_timeout_ms_(std::max<std::int64_t>(0, options.job_timeout_ms)) {
  int threads = options.threads > 0 ? options.threads : hardware_threads();
  threads = std::max(threads, 1);
  engines_.reserve(static_cast<std::size_t>(threads));
  // One content-addressed artifact store across all worker Engines (it
  // is mutex-guarded): a component shared by specs sharded to different
  // workers still computes each artifact once per process — and, when
  // the caller attached a disk tier, once ever.
  const auto artifacts = options.artifacts != nullptr
                             ? options.artifacts
                             : std::make_shared<store::ArtifactStore>();
  for (int t = 0; t < threads; ++t)
    engines_.push_back(std::make_unique<engine::Engine>(artifacts));
}

JobResult Scheduler::evaluate_job(engine::Engine& engine, const Job& job,
                                  std::size_t worker) const {
  JobResult result;
  result.id = job.id;
  telemetry::Span job_span("serve.job");
  job_span.attr("job", job.id)
      .attr("spec", job.request.display_name())
      .attr("worker", worker)
      .attr("shard",
            std::hash<std::string>{}(job.request.spec) % engines_.size());
  WallTimer timer;
  // The per-job soft deadline rides into the pipeline as
  // SpectralOptions::deadline_seconds (deliberately excluded from solver
  // identity and store keys, like retain_basis): over-budget component
  // solves are skipped and the job returns a certified partial bound
  // flagged degraded instead of hanging the worker.
  engine::BoundRequest request = job.request;
  if (job_timeout_ms_ > 0 && request.spectral.deadline_seconds <= 0.0)
    request.spectral.deadline_seconds =
        static_cast<double>(job_timeout_ms_) / 1000.0;
  // Bounded retry: only *transient* failures (an injected fault with
  // kind=transient — a stand-in for I/O hiccups) re-run, with exponential
  // backoff; a job still failing on the last attempt is quarantined.
  // Deterministic failures (bad spec, cyclic graph) fail once, first try.
  for (int attempt = 1;; ++attempt) {
    result.attempts = attempt;
    try {
      faults::inject("serve.worker");
      if (store_ == nullptr) {
        result.report = engine.evaluate(request);
      } else {
        // Content-addressing makes explicit-graph requests first-class
        // store citizens: they hash the carried graph, spec requests hash
        // (and cache) through the Engine.
        const std::uint64_t fingerprint =
            request.graph.has_value()
                ? engine::graph_fingerprint(*request.graph)
                : engine.fingerprint(request.spec);
        const Digraph& graph = request.graph.has_value()
                                   ? *request.graph
                                   : engine.graph(request.spec);
        result.report = evaluate_with_store(
            *store_, fingerprint, request, request.display_name(),
            graph.num_vertices(), graph.num_edges(),
            [&engine](const engine::BoundRequest& sub) {
              return engine.evaluate(sub);
            },
            &result.store_hits, &result.store_misses);
      }
      // Record the originating request in job-line form: `graphio audit`
      // re-evaluates it from scratch when replaying the trail.
      result.report.provenance.request = request_to_json_line(job.request);
      result.ok = true;
      break;
    } catch (const faults::FaultInjected& e) {
      result.ok = false;
      result.error = e.what();
      result.error_kind = e.kind();
      result.error_site = e.site();
      if (e.transient() && attempt < max_attempts_) {
        job_metrics().retried.increment();
        if (backoff_ms_ > 0.0) {
          const double delay =
              backoff_ms_ * static_cast<double>(std::int64_t{1}
                                                << (attempt - 1));
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(delay));
        }
        continue;
      }
      if (e.transient()) {
        result.quarantined = true;
        job_metrics().quarantined.increment();
      }
      break;
    } catch (const std::exception& e) {
      result.ok = false;
      result.error = e.what();
      result.error_kind = "error";
      break;
    }
  }
  if (!result.ok) job_metrics().failed.increment();
  result.seconds = timer.seconds();
  result.report.seconds = result.seconds;
  return result;
}

JobResult Scheduler::run_one(const Job& job) {
  return evaluate_job(*engines_.front(), job, 0);
}

engine::ArtifactCache::Stats Scheduler::engine_stats() const {
  engine::ArtifactCache::Stats total;
  for (const auto& engine : engines_) total += engine->stats();
  return total;
}

Scheduler::RunStats Scheduler::run(
    std::vector<Job> jobs,
    const std::function<void(const JobResult&)>& on_result) {
  RunStats stats;
  stats.threads = threads();
  stats.jobs = static_cast<std::int64_t>(jobs.size());
  WallTimer timer;

  std::vector<engine::ArtifactCache::Stats> before;
  before.reserve(engines_.size());
  for (const auto& engine : engines_) before.push_back(engine->stats());

  JobQueue queue(threads());
  for (Job& job : jobs) queue.push(std::move(job));

  std::mutex result_mutex;
  auto worker = [&](std::size_t index) {
    // With several workers sharing the machine, inner library loops
    // (matvec, min-cut sweeps) must not fan out again — request-level
    // parallelism already saturates the cores. A lone worker keeps them.
    std::optional<SerialRegion> serial;
    if (engines_.size() > 1) serial.emplace();
    engine::Engine& engine = *engines_[index];
    Job job;
    while (queue.pop(index, job)) {
      JobResult result = evaluate_job(engine, job, index);
      // With several workers the process-wide solver counters interleave,
      // so no single report's registry delta is attributable to it alone.
      if (engines_.size() > 1)
        result.report.provenance.registry.exclusive = false;
      const std::lock_guard<std::mutex> lock(result_mutex);
      if (on_result) on_result(result);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(engines_.size() - 1);
  for (std::size_t t = 1; t < engines_.size(); ++t)
    pool.emplace_back(worker, t);
  worker(0);
  for (std::thread& t : pool) t.join();

  for (std::size_t t = 0; t < engines_.size(); ++t)
    stats.cache += engines_[t]->stats() - before[t];
  stats.steals = queue.steals();
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace graphio::serve
