#include "graphio/serve/job.hpp"

#include "graphio/la/solver_policy.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::serve {

namespace {

/// Request keys shared by spec jobs and named-graph queries. Returns
/// false when `key` is not a request key (caller decides what that
/// means). `request.spec` handling stays with the caller.
bool apply_request_key(engine::BoundRequest& request, const std::string& key,
                       const io::JsonValue& v) {
  if (key == "name") {
    request.name = v.as_string();
  } else if (key == "memories") {
    for (const io::JsonValue& m : v.items()) {
      const double memory = m.as_double();
      GIO_EXPECTS_MSG(memory >= 0.0, "memory size must be non-negative");
      request.memories.push_back(memory);
    }
  } else if (key == "methods") {
    for (const io::JsonValue& m : v.items())
      request.methods.push_back(m.as_string());
  } else if (key == "processors") {
    request.processors = v.as_int();
    GIO_EXPECTS_MSG(request.processors >= 1, "processors must be >= 1");
  } else if (key == "sim_random_orders") {
    const std::int64_t orders = v.as_int();
    GIO_EXPECTS_MSG(orders >= 0 && orders <= 1'000'000,
                    "sim_random_orders out of range");
    request.sim_random_orders = static_cast<int>(orders);
  } else if (key == "solver") {
    // Validate at ingest so a bad name rejects the line (with the
    // registered names) instead of failing every method at evaluation.
    request.spectral.solver = la::require_solver_policy(v.as_string()).name();
  } else if (key == "decompose") {
    request.spectral.decompose = v.as_bool();
  } else {
    return false;
  }
  return true;
}

}  // namespace

Job job_from_json(const io::JsonValue& value) {
  GIO_EXPECTS_MSG(value.is_object(), "job line must be a JSON object");
  Job job;
  bool has_patch = false;
  bool has_label = false;
  bool has_request_keys = false;
  for (const auto& [key, v] : value.members()) {
    if (key == "graph") {
      job.graph = v.as_string();
      GIO_EXPECTS_MSG(!job.graph.empty(), "\"graph\" must not be empty");
    } else if (key == "load") {
      job.load_spec = v.as_string();
      GIO_EXPECTS_MSG(!job.load_spec.empty(), "\"load\" must not be empty");
    } else if (key == "patch") {
      GIO_EXPECTS_MSG(v.is_array(), "\"patch\" must be a mutation array");
      for (const io::JsonValue& m : v.items())
        job.patch.mutations.push_back(stream::mutation_from_json(m));
      has_patch = true;
    } else if (key == "label") {
      job.patch.label = v.as_string();
      has_label = true;
    } else if (key == "spec") {
      job.request.spec = v.as_string();
    } else if (apply_request_key(job.request, key, v)) {
      has_request_keys = true;
    } else {
      GIO_EXPECTS_MSG(false, "unknown job key '" + key + "'");
    }
  }

  const bool has_load = !job.load_spec.empty();
  const bool has_query = !job.request.memories.empty();
  GIO_EXPECTS_MSG(static_cast<int>(has_load) + static_cast<int>(has_patch) +
                          static_cast<int>(has_query) <=
                      1,
                  "a job is one of load, patch, or query — not several");
  GIO_EXPECTS_MSG(!has_label || has_patch,
                  "\"label\" only applies to patch jobs");
  if (has_load || has_patch) {
    GIO_EXPECTS_MSG(!job.graph.empty(),
                    "load/patch jobs need a \"graph\" name");
    // Strict, like the rest of the grammar: an analysis key on a
    // load/patch line would be silently dead configuration.
    GIO_EXPECTS_MSG(job.request.spec.empty() && !has_request_keys,
                    "load/patch jobs take no analysis keys");
    job.kind = has_load ? JobKind::kLoad : JobKind::kPatch;
    return job;
  }
  job.kind = JobKind::kBound;
  if (job.graph.empty()) {
    GIO_EXPECTS_MSG(!job.request.spec.empty(), "job needs a \"spec\"");
  } else {
    GIO_EXPECTS_MSG(job.request.spec.empty(),
                    "a query names \"spec\" or \"graph\", not both");
  }
  GIO_EXPECTS_MSG(!job.request.memories.empty(),
                  "job needs a non-empty \"memories\" array");
  return job;
}

Job job_from_json_line(const std::string& line) {
  return job_from_json(io::JsonValue::parse(line));
}

engine::BoundRequest request_from_json(const io::JsonValue& value) {
  Job job = job_from_json(value);
  GIO_EXPECTS_MSG(job.kind == JobKind::kBound && !job.is_stream(),
                  "expected a plain bound job, got a stream job");
  return std::move(job.request);
}

engine::BoundRequest request_from_json_line(const std::string& line) {
  return request_from_json(io::JsonValue::parse(line));
}

std::string request_to_json_line(const engine::BoundRequest& request) {
  io::JsonWriter w;
  w.begin_object();
  w.key("spec").value(request.spec);
  if (!request.name.empty()) w.key("name").value(request.name);
  w.key("memories").begin_array();
  for (double m : request.memories) w.value(m);
  w.end_array();
  if (!request.methods.empty()) {
    w.key("methods").begin_array();
    for (const std::string& m : request.methods) w.value(m);
    w.end_array();
  }
  if (request.processors != 1) w.key("processors").value(request.processors);
  if (request.sim_random_orders != 4)
    w.key("sim_random_orders").value(request.sim_random_orders);
  if (request.spectral.solver != "auto")
    w.key("solver").value(request.spectral.solver);
  if (!request.spectral.decompose) w.key("decompose").value(false);
  w.end_object();
  return w.str();
}

}  // namespace graphio::serve
