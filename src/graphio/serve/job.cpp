#include "graphio/serve/job.hpp"

#include "graphio/la/solver_policy.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::serve {

engine::BoundRequest request_from_json(const io::JsonValue& value) {
  GIO_EXPECTS_MSG(value.is_object(), "job line must be a JSON object");
  engine::BoundRequest request;
  for (const auto& [key, v] : value.members()) {
    if (key == "spec") {
      request.spec = v.as_string();
    } else if (key == "name") {
      request.name = v.as_string();
    } else if (key == "memories") {
      for (const io::JsonValue& m : v.items()) {
        const double memory = m.as_double();
        GIO_EXPECTS_MSG(memory >= 0.0, "memory size must be non-negative");
        request.memories.push_back(memory);
      }
    } else if (key == "methods") {
      for (const io::JsonValue& m : v.items())
        request.methods.push_back(m.as_string());
    } else if (key == "processors") {
      request.processors = v.as_int();
      GIO_EXPECTS_MSG(request.processors >= 1, "processors must be >= 1");
    } else if (key == "sim_random_orders") {
      const std::int64_t orders = v.as_int();
      GIO_EXPECTS_MSG(orders >= 0 && orders <= 1'000'000,
                      "sim_random_orders out of range");
      request.sim_random_orders = static_cast<int>(orders);
    } else if (key == "solver") {
      // Validate at ingest so a bad name rejects the line (with the
      // registered names) instead of failing every method at evaluation.
      request.spectral.solver = la::require_solver_policy(v.as_string()).name();
    } else if (key == "decompose") {
      request.spectral.decompose = v.as_bool();
    } else {
      GIO_EXPECTS_MSG(false, "unknown job key '" + key + "'");
    }
  }
  GIO_EXPECTS_MSG(!request.spec.empty(), "job needs a \"spec\"");
  GIO_EXPECTS_MSG(!request.memories.empty(),
                  "job needs a non-empty \"memories\" array");
  return request;
}

engine::BoundRequest request_from_json_line(const std::string& line) {
  return request_from_json(io::JsonValue::parse(line));
}

std::string request_to_json_line(const engine::BoundRequest& request) {
  io::JsonWriter w;
  w.begin_object();
  w.key("spec").value(request.spec);
  if (!request.name.empty()) w.key("name").value(request.name);
  w.key("memories").begin_array();
  for (double m : request.memories) w.value(m);
  w.end_array();
  if (!request.methods.empty()) {
    w.key("methods").begin_array();
    for (const std::string& m : request.methods) w.value(m);
    w.end_array();
  }
  if (request.processors != 1) w.key("processors").value(request.processors);
  if (request.sim_random_orders != 4)
    w.key("sim_random_orders").value(request.sim_random_orders);
  if (request.spectral.solver != "auto")
    w.key("solver").value(request.spectral.solver);
  if (!request.spectral.decompose) w.key("decompose").value(false);
  w.end_object();
  return w.str();
}

}  // namespace graphio::serve
