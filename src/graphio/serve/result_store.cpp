#include "graphio/serve/result_store.hpp"

#include <charconv>
#include <cstdio>
#include <utility>

#include "graphio/engine/fingerprint.hpp"
#include "graphio/faults/fault_injection.hpp"
#include "graphio/io/json.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/durability.hpp"
#include "graphio/telemetry/metrics.hpp"

namespace graphio::serve {

namespace {

// Registry mirrors of Stats — process-wide lifetime totals across every
// ResultStore instance.
struct ResultStoreMetrics {
  telemetry::Counter& hits;
  telemetry::Counter& misses;
  telemetry::Counter& loaded;
  telemetry::Counter& corrupt;
  telemetry::Counter& appended;
  telemetry::Counter& demoted;
};

ResultStoreMetrics& result_store_metrics() {
  auto& reg = telemetry::MetricsRegistry::global();
  static ResultStoreMetrics metrics{reg.counter("result_store.hits"),
                                    reg.counter("result_store.misses"),
                                    reg.counter("result_store.loaded"),
                                    reg.counter("result_store.corrupt"),
                                    reg.counter("result_store.appended"),
                                    reg.counter("result_store.demoted")};
  return metrics;
}

/// Round-trippable double rendering, shared by the key encoding and the
/// log records so a value always looks up the way it was written.
std::string format_double_exact(double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v,
                                       std::chars_format::general, 17);
  GIO_ASSERT(ec == std::errc());
  return std::string(buf, static_cast<std::size_t>(end - buf));
}

engine::BoundKind kind_from_string(const std::string& s) {
  if (s == "lower") return engine::BoundKind::kLower;
  if (s == "upper") return engine::BoundKind::kUpper;
  if (s == "exact") return engine::BoundKind::kExact;
  if (s == "certificate") return engine::BoundKind::kCertificate;
  GIO_EXPECTS_MSG(false, "unknown bound kind '" + s + "'");
  return engine::BoundKind::kLower;  // unreachable
}

std::string record_line(const ResultStore::Key& key,
                        const engine::MethodRow& row) {
  io::JsonWriter w;
  w.begin_object();
  w.key("graph").value(engine::fingerprint_hex(key.graph_fingerprint));
  w.key("method").value(key.method);
  w.key("memory").value(key.memory);
  w.key("processors").value(key.processors);
  w.key("orders").value(key.sim_random_orders);
  w.key("solver").value(key.solver);
  w.key("decompose").value(key.decompose);
  w.key("row").begin_object();
  w.key("kind").value(engine::to_string(row.kind));
  w.key("applicable").value(row.applicable);
  w.key("bound").value(row.value);
  w.key("best_k").value(row.best_k);
  w.key("converged").value(row.converged);
  w.key("seconds").value(row.seconds);
  w.key("note").value(row.note);
  w.end_object();
  w.end_object();
  return w.str();
}

/// Parses one log line back into (key, row). Throws on malformed lines;
/// the loader catches and counts.
std::pair<ResultStore::Key, engine::MethodRow> parse_record(
    const std::string& line) {
  const io::JsonValue v = io::JsonValue::parse(line);
  ResultStore::Key key;
  const std::string& hex = v.at("graph").as_string();
  GIO_EXPECTS_MSG(hex.size() == 16, "bad fingerprint");
  std::uint64_t fp = 0;
  const auto [p, ec] =
      std::from_chars(hex.data(), hex.data() + hex.size(), fp, 16);
  GIO_EXPECTS_MSG(ec == std::errc() && p == hex.data() + hex.size(),
                  "bad fingerprint");
  key.graph_fingerprint = fp;
  key.method = v.at("method").as_string();
  key.memory = v.at("memory").as_double();
  key.processors = v.at("processors").as_int();
  key.sim_random_orders = static_cast<int>(v.at("orders").as_int());
  // Absent in logs written before the solver-policy fields existed; those
  // rows were computed with the defaults, which the scheduler keys as
  // "auto" for the spectral families (and "" for everything else) — so
  // default, not leave empty, or pre-upgrade spectral rows could never
  // hit again.
  const bool spectral_family = key.method == "spectral" ||
                               key.method == "spectral-plain" ||
                               key.method == "parallel";
  key.solver = spectral_family ? "auto" : "";
  if (const io::JsonValue* solver = v.get("solver"))
    key.solver = solver->as_string();
  if (const io::JsonValue* decompose = v.get("decompose"))
    key.decompose = decompose->as_bool();

  const io::JsonValue& r = v.at("row");
  engine::MethodRow row;
  row.method = key.method;
  row.memory = key.memory;
  row.processors = key.processors;
  row.kind = kind_from_string(r.at("kind").as_string());
  row.applicable = r.at("applicable").as_bool();
  row.value = r.at("bound").as_double();
  row.best_k = static_cast<int>(r.at("best_k").as_int());
  row.converged = r.at("converged").as_bool();
  row.seconds = r.at("seconds").as_double();
  row.note = r.at("note").as_string();
  return {std::move(key), std::move(row)};
}

}  // namespace

std::string ResultStore::encode_key(const Key& key) {
  std::string out = engine::fingerprint_hex(key.graph_fingerprint);
  out += '|';
  out += key.method;
  out += '|';
  out += format_double_exact(key.memory);
  out += '|';
  out += std::to_string(key.processors);
  out += '|';
  out += std::to_string(key.sim_random_orders);
  out += '|';
  out += key.solver;
  out += key.decompose ? "" : "|mono";
  return out;
}

ResultStore::ResultStore(const std::filesystem::path& dir) {
  // A store that cannot be created or opened must be a hard error: a
  // silent cache-less run would recompute every eigensolve while the
  // caller believes results are being persisted. create_directories is
  // not required to report a pre-existing non-directory on every
  // implementation, so check both ways.
  GIO_EXPECTS_MSG(!dir.empty(), "store directory must not be empty");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  GIO_EXPECTS_MSG(!ec, "cannot create store directory '" + dir.string() +
                           "': " + ec.message());
  GIO_EXPECTS_MSG(std::filesystem::is_directory(dir, ec) && !ec,
                  "store path '" + dir.string() + "' is not a directory");
  log_path_ = dir / "results.jsonl";

  if (std::filesystem::exists(log_path_)) {
    std::ifstream in(log_path_);
    GIO_EXPECTS_MSG(in.good(),
                    "cannot read store log '" + log_path_.string() + "'");
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        auto [key, row] = parse_record(line);
        if (rows_.emplace(encode_key(key), std::move(row)).second)
          ++stats_.loaded;
      } catch (const std::exception&) {
        ++stats_.corrupt;  // torn/garbage line; keep replaying
      }
    }
    result_store_metrics().loaded.add(stats_.loaded);
    result_store_metrics().corrupt.add(stats_.corrupt);
  }

  log_.open(log_path_, std::ios::app);
  GIO_EXPECTS_MSG(log_.good(),
                  "cannot append to store log '" + log_path_.string() + "'");
}

std::optional<engine::MethodRow> ResultStore::lookup(const Key& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = rows_.find(encode_key(key));
  if (it == rows_.end()) {
    ++stats_.misses;
    result_store_metrics().misses.increment();
    return std::nullopt;
  }
  ++stats_.hits;
  result_store_metrics().hits.increment();
  return it->second;
}

void ResultStore::insert(const Key& key, const engine::MethodRow& row) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!rows_.emplace(encode_key(key), row).second) return;
  if (demoted_) return;
  try {
    faults::inject("result_store.append");
    log_ << record_line(key, row) << '\n';
    log_.flush();
    if (!log_.good())
      throw std::runtime_error("write failed on '" + log_path_.string() +
                               "'");
    ++stats_.appended;
    result_store_metrics().appended.increment();
  } catch (const std::exception& e) {
    demote_locked(e.what());
  }
}

void ResultStore::demote_locked(const std::string& why) {
  demoted_ = true;
  stats_.demoted = true;
  result_store_metrics().demoted.increment();
  log_.close();
  std::fprintf(stderr,
               "graphio: result store disk tier disabled (%s); "
               "continuing memory-only\n",
               why.c_str());
}

void ResultStore::sync() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (demoted_) return;
  log_.flush();
  if (!log_.good()) {
    demote_locked("flush failed on '" + log_path_.string() + "'");
    return;
  }
  fsync_path(log_path_.string());
}

ResultStore::Stats ResultStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ResultStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rows_.size();
}

}  // namespace graphio::serve
