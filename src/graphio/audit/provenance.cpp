#include "graphio/audit/provenance.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "graphio/engine/fingerprint.hpp"
#include "graphio/faults/fault_injection.hpp"
#include "graphio/support/contracts.hpp"
#include "graphio/support/durability.hpp"
#include "graphio/telemetry/metrics.hpp"

namespace graphio::audit {

namespace {

std::uint64_t parse_hex_fingerprint(const std::string& hex) {
  std::uint64_t value = 0;
  GIO_EXPECTS_MSG(!hex.empty() && hex.size() <= 16,
                  "malformed fingerprint '" + hex + "'");
  for (char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      GIO_EXPECTS_MSG(false, "malformed fingerprint '" + hex + "'");
  }
  return value;
}

void append_component_json(io::JsonWriter& w, const ComponentProvenance& c) {
  w.begin_object();
  if (c.fingerprinted) w.key("fp").value(engine::fingerprint_hex(c.fingerprint));
  w.key("vertices").value(c.vertices);
  w.key("edges").value(c.edges);
  w.key("tier").value(c.tier);
  if (!c.solver.empty()) w.key("solver").value(c.solver);
  w.key("source").value(c.source);
  w.key("iterations").value(c.iterations);
  w.key("residual").value(c.residual);
  w.key("floor").value(c.certified_floor);
  if (c.warm_predecessor != 0)
    w.key("pred").value(engine::fingerprint_hex(c.warm_predecessor));
  w.key("converged").value(c.converged);
  w.end_object();
}

ComponentProvenance parse_component(const io::JsonValue& v) {
  ComponentProvenance c;
  if (const io::JsonValue* fp = v.get("fp")) {
    c.fingerprint = parse_hex_fingerprint(fp->as_string());
    c.fingerprinted = true;
  }
  c.vertices = v.at("vertices").as_int();
  c.edges = v.at("edges").as_int();
  c.tier = v.at("tier").as_string();
  if (const io::JsonValue* solver = v.get("solver"))
    c.solver = solver->as_string();
  c.source = v.at("source").as_string();
  c.iterations = static_cast<int>(v.at("iterations").as_int());
  c.residual = v.at("residual").as_double();
  c.certified_floor = v.at("floor").as_double();
  if (const io::JsonValue* pred = v.get("pred"))
    c.warm_predecessor = parse_hex_fingerprint(pred->as_string());
  c.converged = v.at("converged").as_bool();
  return c;
}

void append_row_json(io::JsonWriter& w, const RowLineage& r) {
  w.begin_object();
  w.key("method").value(r.method);
  w.key("memory").value(r.memory);
  if (r.processors != 1) w.key("processors").value(r.processors);
  w.key("applicable").value(r.applicable);
  if (r.applicable) {
    w.key("bound").value(r.bound);
    if (r.best_k != 0) w.key("best_k").value(r.best_k);
    w.key("converged").value(r.converged);
    // Only-when-true keeps pre-existing trails byte-identical.
    if (r.degraded) w.key("degraded").value(true);
  }
  w.key("source").value(r.source);
  w.end_object();
}

RowLineage parse_row(const io::JsonValue& v) {
  RowLineage r;
  r.method = v.at("method").as_string();
  r.memory = v.at("memory").as_double();
  if (const io::JsonValue* p = v.get("processors")) r.processors = p->as_int();
  r.applicable = v.at("applicable").as_bool();
  if (r.applicable) {
    r.bound = v.at("bound").as_double();
    if (const io::JsonValue* k = v.get("best_k"))
      r.best_k = static_cast<int>(k->as_int());
    r.converged = v.at("converged").as_bool();
    if (const io::JsonValue* d = v.get("degraded")) r.degraded = d->as_bool();
  }
  r.source = v.at("source").as_string();
  return r;
}

}  // namespace

std::string_view solve_tier(const ComponentSolve& solve) {
  if (solve.skipped) return "skipped";
  if (solve.refresh) return "refresh";
  if (solve.warm_started) return "warm";
  if (!solve.solver_ran && !solve.from_cache) return "trivial";
  return "cold";
}

std::string_view solve_source(const ComponentSolve& solve) {
  if (!solve.from_cache) return "computed";
  return solve.from_disk ? "disk" : "memory";
}

ComponentProvenance component_provenance(const ComponentSolve& solve) {
  ComponentProvenance c;
  c.fingerprint = solve.fingerprint;
  c.fingerprinted = solve.fingerprinted;
  c.vertices = solve.vertices;
  c.edges = solve.edges;
  c.tier = std::string(solve_tier(solve));
  if (c.tier != "trivial" && c.tier != "skipped")
    c.solver = std::string(la::to_string(solve.solver));
  c.source = std::string(solve_source(solve));
  c.iterations = solve.iterations;
  c.residual = solve.max_residual;
  // Iterative solves clamp values at max(0, θ−‖r‖); dense solves are
  // backward-stable and may report the zero eigenvalue as −ε roundoff.
  // The certified floor is ≥ 0 either way (the Laplacian is PSD).
  c.certified_floor =
      solve.values.empty() ? 0.0 : std::max(0.0, solve.values.front());
  c.warm_predecessor = solve.warm_predecessor;
  c.converged = solve.converged;
  return c;
}

void ProvenanceRecord::append_json(io::JsonWriter& w) const {
  w.begin_object();
  w.key("schema").value(schema);
  w.key("kind").value(kind);
  w.key("graph").value(graph);
  if (fingerprint != 0)
    w.key("fp").value(engine::fingerprint_hex(fingerprint));
  if (dirty >= 0) w.key("dirty").value(dirty);
  if (clean >= 0) w.key("clean").value(clean);
  if (!request.empty()) w.key("request").value(request);
  w.key("registry").begin_object();
  w.key("warm_hits").value(registry.warm_hits);
  w.key("iterations").value(registry.iterations);
  w.key("exclusive").value(registry.exclusive);
  w.end_object();
  w.key("spectra").begin_array();
  for (const SpectrumProvenance& sp : spectra) {
    w.begin_object();
    w.key("laplacian").value(sp.laplacian);
    w.key("requested").value(sp.requested);
    w.key("computed").value(sp.computed);
    w.key("merged_values").value(sp.merged_values);
    w.key("components").begin_array();
    for (const ComponentProvenance& c : sp.components)
      append_component_json(w, c);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("rows").begin_array();
  for (const RowLineage& r : rows) append_row_json(w, r);
  w.end_array();
  w.end_object();
}

std::string ProvenanceRecord::to_json() const {
  io::JsonWriter w;
  append_json(w);
  return w.str();
}

Table ProvenanceRecord::to_table() const {
  Table t({"lap", "component", "tier", "solver", "source", "iters",
           "residual", "floor", "conv"});
  for (const SpectrumProvenance& sp : spectra) {
    for (const ComponentProvenance& c : sp.components) {
      t.add_row({sp.laplacian,
                 c.fingerprinted ? engine::fingerprint_hex(c.fingerprint)
                                 : "n=" + std::to_string(c.vertices),
                 c.tier, c.solver.empty() ? "-" : c.solver, c.source,
                 format_int(c.iterations),
                 format_double(c.residual, 6),
                 format_double(c.certified_floor, 6),
                 c.converged ? "yes" : "NO"});
    }
  }
  return t;
}

ProvenanceRecord parse_record(const io::JsonValue& v) {
  ProvenanceRecord r;
  r.schema = static_cast<int>(v.at("schema").as_int());
  r.kind = v.at("kind").as_string();
  r.graph = v.at("graph").as_string();
  if (const io::JsonValue* fp = v.get("fp"))
    r.fingerprint = parse_hex_fingerprint(fp->as_string());
  if (const io::JsonValue* dirty = v.get("dirty")) r.dirty = dirty->as_int();
  if (const io::JsonValue* clean = v.get("clean")) r.clean = clean->as_int();
  if (const io::JsonValue* req = v.get("request"))
    r.request = req->as_string();
  const io::JsonValue& reg = v.at("registry");
  r.registry.warm_hits = reg.at("warm_hits").as_int();
  r.registry.iterations = reg.at("iterations").as_int();
  r.registry.exclusive = reg.at("exclusive").as_bool();
  for (const io::JsonValue& sp_v : v.at("spectra").items()) {
    SpectrumProvenance sp;
    sp.laplacian = sp_v.at("laplacian").as_string();
    sp.requested = static_cast<int>(sp_v.at("requested").as_int());
    sp.computed = sp_v.at("computed").as_bool();
    sp.merged_values = sp_v.at("merged_values").as_int();
    for (const io::JsonValue& c_v : sp_v.at("components").items())
      sp.components.push_back(parse_component(c_v));
    r.spectra.push_back(std::move(sp));
  }
  for (const io::JsonValue& row_v : v.at("rows").items())
    r.rows.push_back(parse_row(row_v));
  return r;
}

std::vector<ProvenanceRecord> load_provenance(
    const std::filesystem::path& file) {
  std::ifstream in(file);
  GIO_EXPECTS_MSG(in.good(),
                  "cannot read provenance log '" + file.string() + "'");
  std::vector<ProvenanceRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    records.push_back(parse_record(io::JsonValue::parse(line)));
  }
  return records;
}

std::vector<std::string> check_record(const ProvenanceRecord& record) {
  std::vector<std::string> issues;
  const auto flag = [&issues, &record](const std::string& what) {
    issues.push_back("record '" + record.graph + "': " + what);
  };
  for (const SpectrumProvenance& sp : record.spectra) {
    for (std::size_t i = 0; i < sp.components.size(); ++i) {
      const ComponentProvenance& c = sp.components[i];
      const std::string where =
          sp.laplacian + " component #" + std::to_string(i);
      if (c.tier != "refresh" && c.tier != "warm" && c.tier != "cold" &&
          c.tier != "trivial" && c.tier != "skipped")
        flag(where + " has unknown tier '" + c.tier + "'");
      if (c.source != "computed" && c.source != "memory" &&
          c.source != "disk")
        flag(where + " has unknown source '" + c.source + "'");
      if (c.residual < 0.0) flag(where + " has a negative residual");
      if (c.certified_floor < 0.0)
        flag(where + " has a negative certified floor");
      if (c.iterations < 0) flag(where + " has negative iterations");
      if (c.tier == "refresh") {
        if (c.iterations != 1)
          flag(where + " claims a refresh with iterations != 1");
        if (c.warm_predecessor == 0)
          flag(where + " claims a refresh without a warm predecessor");
      }
      if (c.tier == "warm" && c.warm_predecessor == 0)
        flag(where + " claims a warm start without a predecessor");
      if (c.tier == "trivial") {
        if (c.edges != 0) flag(where + " claims trivial but has edges");
        if (c.iterations != 0 || c.residual != 0.0)
          flag(where + " claims trivial but reports solver work");
      }
      if (c.tier == "cold" && c.warm_predecessor != 0)
        flag(where + " claims cold but carries a warm predecessor");
      if (c.tier == "skipped") {
        if (c.iterations != 0 || c.residual != 0.0)
          flag(where + " claims skipped but reports solver work");
        if (c.converged)
          flag(where + " claims skipped but also converged");
      }
    }
  }
  if (record.registry.exclusive) {
    std::int64_t iterations = 0;
    std::int64_t warm = 0;
    for (const SpectrumProvenance& sp : record.spectra) {
      if (!sp.computed) continue;
      for (const ComponentProvenance& c : sp.components) {
        if (c.source != "computed") continue;
        iterations += c.iterations;
        if (c.tier == "refresh" || c.tier == "warm") ++warm;
      }
    }
    if (iterations != record.registry.iterations)
      flag("claimed iterations " + std::to_string(iterations) +
           " != solver.iterations delta " +
           std::to_string(record.registry.iterations));
    if (warm != record.registry.warm_hits)
      flag("claimed warm tiers " + std::to_string(warm) +
           " != solver.warm_hits delta " +
           std::to_string(record.registry.warm_hits));
  }
  return issues;
}

ProvenanceLog::ProvenanceLog(const std::filesystem::path& dir) {
  GIO_EXPECTS_MSG(!dir.empty(), "provenance directory must not be empty");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  GIO_EXPECTS_MSG(!ec, "cannot create provenance directory '" +
                           dir.string() + "': " + ec.message());
  path_ = dir / "provenance.jsonl";
  out_.open(path_, std::ios::app);
  GIO_EXPECTS_MSG(out_.good(), "cannot append to provenance log '" +
                                   path_.string() + "'");
}

void ProvenanceLog::append(const ProvenanceRecord& record) {
  const std::string line = record.to_json();
  const std::scoped_lock lock(mutex_);
  if (demoted_) return;
  try {
    faults::inject("provenance.append");
    out_ << line << '\n';
    out_.flush();
    if (!out_.good())
      throw std::runtime_error("write failed on '" + path_.string() + "'");
    ++appended_;
  } catch (const std::exception& e) {
    demote_locked(e.what());
  }
}

void ProvenanceLog::demote_locked(const std::string& why) {
  demoted_ = true;
  telemetry::MetricsRegistry::global().counter("provenance.demoted")
      .increment();
  out_.close();
  std::fprintf(stderr,
               "graphio: provenance trail disabled (%s); bounds unaffected\n",
               why.c_str());
}

void ProvenanceLog::sync() {
  const std::scoped_lock lock(mutex_);
  if (demoted_) return;
  out_.flush();
  if (!out_.good()) {
    demote_locked("flush failed on '" + path_.string() + "'");
    return;
  }
  fsync_path(path_.string());
}

}  // namespace graphio::audit
