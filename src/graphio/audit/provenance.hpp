// Provenance — per-result lineage records and the replayable audit trail.
//
// The library's whole value is that its numbers are *certified lower
// bounds*, yet one bound can be assembled from a mix of Rayleigh–Ritz
// refreshes, warm-seeded or cold eigensolves, memory-tier hits, and
// disk-replay artifacts. A ProvenanceRecord makes that composition
// inspectable end to end: per component the solver tier actually taken
// (refresh / warm / cold / trivial), the iterations spent, the residual
// certifying the θ − ‖r‖ floor, the artifact source (computed this run,
// memory tier, disk replay), and the warm predecessor fingerprint — plus
// the merge lineage from per-kind spectra to the final per-(method, M)
// rows, and the MetricsRegistry counter deltas the claims must reconcile
// with.
//
// Serialization is *stable JSON*: no wall-clock field anywhere, doubles
// at 17 significant digits, deterministic key order — two runs that did
// the same work produce byte-identical records, which is what lets
// `graphio audit` re-run a recorded trail and diff the results exactly.
//
// This header depends only on core + io + support (NOT on engine): the
// engine's BoundReport embeds a ProvenanceRecord, so the dependency must
// point this way.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "graphio/core/spectral_pipeline.hpp"
#include "graphio/io/json.hpp"
#include "graphio/support/table.hpp"

namespace graphio::audit {

/// The solver tier one component solve actually took:
///   "refresh"  certified one-pass Rayleigh–Ritz over a retained basis
///   "warm"     iterative solve seeded from a retained basis
///   "cold"     unseeded solve (dense or iterative)
///   "trivial"  edgeless component — no solver, spectrum identically zero
/// Cache-served solves report the tier of the solve that *produced* the
/// values; the artifact source (below) says it was served, not re-run.
[[nodiscard]] std::string_view solve_tier(const ComponentSolve& solve);

/// Where the values came from for *this* evaluation: "computed" (an
/// eigensolver ran), "memory" (artifact-store memory tier), or "disk"
/// (replayed from the store's append-only JSONL across a restart).
[[nodiscard]] std::string_view solve_source(const ComponentSolve& solve);

/// Lineage of one component's contribution to a spectrum.
struct ComponentProvenance {
  std::uint64_t fingerprint = 0;
  bool fingerprinted = false;
  std::int64_t vertices = 0;
  std::int64_t edges = 0;
  std::string tier = "trivial";  ///< solve_tier of the producing solve
  std::string solver;            ///< dense|lanczos|lobpcg ("" for trivial)
  std::string source = "computed";  ///< solve_source for this evaluation
  int iterations = 0;
  /// Largest residual ‖Ax − θx‖ over the returned pairs — the
  /// certificate width behind the θ − ‖r‖ values.
  double residual = 0.0;
  /// Smallest certified value the component contributed (≥ 0).
  double certified_floor = 0.0;
  std::uint64_t warm_predecessor = 0;  ///< 0 when not warm-started
  bool converged = true;
};

/// Builds the lineage entry for one ComponentSolve.
[[nodiscard]] ComponentProvenance component_provenance(
    const ComponentSolve& solve);

/// One spectrum the evaluation consumed: either a pipeline run performed
/// within the evaluation (`computed` true — its components reconcile
/// against the registry deltas) or a cached artifact served without
/// re-running (`computed` false — components describe the producing run).
struct SpectrumProvenance {
  std::string laplacian;  ///< "norm" (L̃) or "plain" (L)
  int requested = 0;      ///< h the spectrum was computed for
  bool computed = false;
  std::int64_t merged_values = 0;  ///< values after the exact merge
  std::vector<ComponentProvenance> components;  ///< component order
};

/// One final row of the bound report, closing the lineage from spectra
/// (and the non-spectral substrates) to the numbers a user sees.
struct RowLineage {
  std::string method;
  double memory = 0.0;
  std::int64_t processors = 1;
  bool applicable = true;
  double bound = 0.0;
  int best_k = 0;
  bool converged = true;
  /// True when the bound was certified-truncated (deadline or injected
  /// fault): still a sound lower bound, but weaker than a full evaluation
  /// — `graphio audit` accepts it iff the recorded value does not exceed
  /// the fresh one.
  bool degraded = false;
  /// "computed" or "store" (served from the serve ResultStore).
  std::string source = "computed";
};

/// Process-wide MetricsRegistry counter deltas bracketed around the
/// evaluation. `exclusive` is true only when nothing else could have
/// moved the counters (single-lane execution); audits reconcile the
/// claimed tiers against these deltas exactly when it is set.
struct RegistryDelta {
  std::int64_t warm_hits = 0;   ///< solver.warm_hits delta
  std::int64_t iterations = 0;  ///< solver.iterations delta
  bool exclusive = true;
};

struct ProvenanceRecord {
  int schema = 1;
  std::string kind = "bound";  ///< "bound" or "stream"
  std::string graph;           ///< display name / stream session name
  /// Durable identity of the analyzed graph: the whole-graph content
  /// fingerprint, or the component-multiset session fingerprint for
  /// stream queries. 0 when the producing surface did not stamp one.
  std::uint64_t fingerprint = 0;
  /// Stream queries: components dirtied / left clean by the patches
  /// since the previous query. −1 (omitted from JSON) otherwise.
  std::int64_t dirty = -1;
  std::int64_t clean = -1;
  /// The originating request in its serve job-line JSON form (see
  /// serve/job.hpp), when the producing surface recorded one — this is
  /// what lets `graphio audit` re-evaluate a bound record from scratch.
  /// Empty (and omitted from JSON) otherwise.
  std::string request;
  RegistryDelta registry;
  std::vector<SpectrumProvenance> spectra;
  std::vector<RowLineage> rows;

  /// Stable JSON (no wall-clock fields; see file comment).
  void append_json(io::JsonWriter& w) const;
  [[nodiscard]] std::string to_json() const;
  /// Human table, one row per component per spectrum.
  [[nodiscard]] Table to_table() const;
};

/// Parses a record serialized by append_json. Throws contract_error on
/// malformed input.
[[nodiscard]] ProvenanceRecord parse_record(const io::JsonValue& v);

/// Loads every record of a provenance JSONL file (blank lines skipped;
/// malformed lines throw — an audit trail must not silently shrink).
[[nodiscard]] std::vector<ProvenanceRecord> load_provenance(
    const std::filesystem::path& file);

/// Internal-consistency issues of one record (empty means clean):
/// tier/iteration/predecessor invariants per component, non-negative
/// residuals and floors, and — when registry.exclusive — exact
/// reconciliation of the claimed solver tiers against the registry
/// deltas (Σ iterations of computed components == solver.iterations
/// delta; refresh+warm computed components == solver.warm_hits delta).
[[nodiscard]] std::vector<std::string> check_record(
    const ProvenanceRecord& record);

/// Append-only provenance JSONL next to a ResultStore: one record per
/// line in `<dir>/provenance.jsonl`. Thread-safe; lines are flushed as
/// written so a crashed run leaves a replayable prefix.
class ProvenanceLog {
 public:
  explicit ProvenanceLog(const std::filesystem::path& dir);

  /// Appends one record. A write failure (or injected `provenance.append`
  /// fault) disables the log with a warning and the `provenance.demoted`
  /// counter — losing lineage must never fail the run that produced the
  /// bound.
  void append(const ProvenanceRecord& record);

  /// Flushes and fsyncs the trail (no-op when demoted). Called at batch
  /// boundaries under `--durable`.
  void sync();

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  [[nodiscard]] std::int64_t appended() const noexcept { return appended_; }

 private:
  void demote_locked(const std::string& why);

  std::mutex mutex_;
  std::filesystem::path path_;
  std::ofstream out_;
  std::int64_t appended_ = 0;
  bool demoted_ = false;
};

}  // namespace graphio::audit
