#include "graphio/exact/pebble_recompute.hpp"

#include <bit>
#include <deque>
#include <unordered_map>
#include <vector>

#include "graphio/graph/topo.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::exact {

namespace {

struct Move {
  std::uint64_t state;
  std::int64_t cost;  // 0 or 1
};

}  // namespace

RecomputeResult exact_optimal_io_with_recomputation(
    const Digraph& g, std::int64_t memory, const RecomputeOptions& options) {
  const std::int64_t n = g.num_vertices();
  GIO_EXPECTS_MSG(n <= kMaxRecomputeVertices,
                  "recompute search packs 2 n-bit sets into 64 bits");
  GIO_EXPECTS(memory >= 1);
  GIO_EXPECTS_MSG(is_dag(g), "pebbling requires an acyclic graph");

  RecomputeResult result;
  if (n == 0) {
    result.io = 0;
    result.complete = true;
    return result;
  }

  std::vector<std::uint64_t> parent_mask(static_cast<std::size_t>(n), 0);
  std::uint64_t sink_mask = 0;
  std::int64_t max_operands = 0;
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t mask = 0;
    for (VertexId p : g.parents(v)) mask |= 1ULL << p;
    parent_mask[static_cast<std::size_t>(v)] = mask;
    max_operands = std::max<std::int64_t>(max_operands,
                                          std::popcount(mask));
    if (g.out_degree(v) == 0) sink_mask |= 1ULL << v;
  }
  GIO_EXPECTS_MSG(max_operands <= memory,
                  "vertex has more distinct operands than fast memory");

  const auto nn = static_cast<unsigned>(n);
  auto red = [&](std::uint64_t s) { return s & ((1ULL << nn) - 1); };
  auto blue = [&](std::uint64_t s) { return s >> nn; };
  auto pack = [&](std::uint64_t r, std::uint64_t b) { return r | (b << nn); };

  // 0-1 BFS (deque Dijkstra) over packed states.
  std::unordered_map<std::uint64_t, std::int64_t> dist;
  std::deque<std::uint64_t> queue;
  const std::uint64_t start = pack(0, 0);
  dist.emplace(start, 0);
  queue.push_back(start);

  std::vector<Move> moves;
  while (!queue.empty()) {
    const std::uint64_t state = queue.front();
    queue.pop_front();
    const std::int64_t d = dist.at(state);
    ++result.states_expanded;
    if (result.states_expanded > options.max_states) return result;

    const std::uint64_t r = red(state);
    const std::uint64_t b = blue(state);
    if ((b & sink_mask) == sink_mask) {
      result.io = d;
      result.complete = true;
      return result;
    }

    moves.clear();
    const bool red_free = std::popcount(r) < memory;
    for (VertexId v = 0; v < n; ++v) {
      const std::uint64_t bit = 1ULL << v;
      const bool is_sink = (sink_mask & bit) != 0;
      // compute v: parents red; sinks are reported straight into "blue"
      // without occupying a red slot. When no pebble is free, the result
      // may SLIDE into any currently red slot (the no-recompute model's
      // compute likewise lets the result take a just-freed operand slot;
      // without sliding, a binary op at M = 2 would deadlock).
      if ((parent_mask[static_cast<std::size_t>(v)] & ~r) == 0) {
        if (is_sink) {
          if (!(b & bit)) moves.push_back({pack(r, b | bit), 0});
        } else if (!(r & bit)) {
          if (red_free) {
            moves.push_back({pack(r | bit, b), 0});
          } else {
            std::uint64_t occupied = r;
            while (occupied != 0) {
              const std::uint64_t slot = occupied & (~occupied + 1);
              occupied &= occupied - 1;
              moves.push_back({pack((r & ~slot) | bit, b), 0});
            }
          }
        }
      }
      // read v from slow memory.
      if ((b & bit) && !(r & bit) && !is_sink && red_free)
        moves.push_back({pack(r | bit, b), 1});
      // write v to slow memory.
      if ((r & bit) && !(b & bit)) moves.push_back({pack(r, b | bit), 1});
      // drop v's red pebble.
      if (r & bit) moves.push_back({pack(r & ~bit, b), 0});
    }

    for (const Move& move : moves) {
      const std::int64_t nd = d + move.cost;
      auto [it, inserted] = dist.emplace(move.state, nd);
      if (!inserted) {
        if (it->second <= nd) continue;
        it->second = nd;
      }
      if (move.cost == 0)
        queue.push_front(move.state);
      else
        queue.push_back(move.state);
    }
  }
  return result;  // exhausted without reaching the goal (disconnected?)
}

}  // namespace graphio::exact
