// Exact optimal I/O under the ORIGINAL Hong–Kung red-blue pebble game —
// recomputation allowed.
//
// The paper (following [4, 12, 21]) forbids recomputation: a value
// evicted while still needed must be written once and re-read. Hong &
// Kung's original game [17] instead allows re-deriving a value from its
// parents at zero I/O cost, which can only help. This module computes the
// recomputation-allowed optimum J*_rb(G) exactly for tiny graphs, so the
// suite can measure the modelling gap
//
//     J*_rb(G)  ≤  J*(G)      (every no-recompute execution is a valid
//                              pebbling strategy)
//
// and the ablation bench can show where the two models genuinely diverge
// (deep narrow graphs where recomputing a cheap chain beats spilling).
//
// Game state is (red set R, blue set B) with |R| ≤ M; moves:
//   * compute v (cost 0): all parents red; the result takes a free red
//     pebble or slides into any occupied slot (matching the no-recompute
//     model, where a result may take a just-freed operand slot). Sinks
//     are reported immediately (their "blue" bit records completion) and
//     do not occupy a red slot — the paper's trivial-I/O convention;
//   * read  v (cost 1): v blue, not red, a red pebble free;
//   * write v (cost 1): v red, not blue;
//   * drop  v (cost 0): remove v's red pebble.
// Inputs are computed free (no parents), matching the paper's free
// first-touch rule. Goal: every sink reported. Search is 0-1 BFS over
// packed (R, B) states; the state space is ~2^(2n), so this is for
// genuinely tiny graphs (n ≤ 16 in practice, enforced via max_states).
#pragma once

#include <cstdint>

#include "graphio/graph/digraph.hpp"

namespace graphio::exact {

/// Hard limit from packing two n-bit sets into one 64-bit key.
inline constexpr std::int64_t kMaxRecomputeVertices = 16;

struct RecomputeOptions {
  /// Search cap; when exceeded the result is marked incomplete.
  std::int64_t max_states = 20'000'000;
};

struct RecomputeResult {
  /// Optimal non-trivial I/O with recomputation allowed, -1 on cutoff.
  std::int64_t io = -1;
  bool complete = false;
  std::int64_t states_expanded = 0;
};

/// Exact J*_rb(G) for fast memory `memory`. Requires
/// n ≤ kMaxRecomputeVertices and memory ≥ max #distinct operands.
RecomputeResult exact_optimal_io_with_recomputation(
    const Digraph& g, std::int64_t memory,
    const RecomputeOptions& options = {});

}  // namespace graphio::exact
