#include "graphio/exact/pebble_search.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <limits>
#include <unordered_map>

#include "graphio/graph/topo.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::exact {

namespace {

using Mask = std::uint32_t;

/// State = three n-bit sets packed into one word:
/// computed | resident << n | written << 2n.
using State = std::uint64_t;

struct Pack {
  int n;
  [[nodiscard]] State make(Mask computed, Mask resident,
                           Mask written) const {
    return static_cast<State>(computed) |
           (static_cast<State>(resident) << n) |
           (static_cast<State>(written) << (2 * n));
  }
  [[nodiscard]] Mask computed(State s) const {
    return static_cast<Mask>(s & ((1ULL << n) - 1));
  }
  [[nodiscard]] Mask resident(State s) const {
    return static_cast<Mask>((s >> n) & ((1ULL << n) - 1));
  }
  [[nodiscard]] Mask written(State s) const {
    return static_cast<Mask>((s >> (2 * n)) & ((1ULL << n) - 1));
  }
};

struct Move {
  State from;
  VertexId computed_vertex;  // -1 for evict/read moves
};

}  // namespace

ExactResult exact_optimal_io(const Digraph& g, std::int64_t memory,
                             const ExactOptions& options) {
  const std::int64_t n64 = g.num_vertices();
  GIO_EXPECTS_MSG(n64 <= kMaxExactVertices,
                  "exact search is limited to 21 vertices");
  GIO_EXPECTS_MSG(topological_order(g).has_value(), "graph has a cycle");
  GIO_EXPECTS(memory >= 1);
  const int n = static_cast<int>(n64);
  const Pack pack{n};

  // Distinct parent / child masks.
  std::vector<Mask> parents(static_cast<std::size_t>(n), 0);
  std::vector<Mask> children(static_cast<std::size_t>(n), 0);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId p : g.parents(v))
      parents[static_cast<std::size_t>(v)] |= Mask{1} << p;
    for (VertexId c : g.children(v))
      children[static_cast<std::size_t>(v)] |= Mask{1} << c;
  }
  for (VertexId v = 0; v < n; ++v) {
    const int operands =
        std::popcount(parents[static_cast<std::size_t>(v)]);
    GIO_EXPECTS_MSG(operands <= memory,
                    "vertex has more distinct operands than fast memory");
  }

  const Mask all = n == 32 ? ~Mask{0} : (Mask{1} << n) - 1;

  // Live values under computed-set C: computed with an uncomputed child.
  auto live_mask = [&](Mask computed) {
    Mask live = 0;
    Mask rest = computed;
    while (rest != 0) {
      const int v = std::countr_zero(rest);
      rest &= rest - 1;
      if ((children[static_cast<std::size_t>(v)] & ~computed) != 0)
        live |= Mask{1} << v;
    }
    return live;
  };

  const State start = pack.make(0, 0, 0);
  std::unordered_map<State, std::int32_t> dist;
  std::unordered_map<State, Move> pred;
  dist.reserve(1 << 16);
  dist[start] = 0;

  std::deque<State> queue;  // 0-1 BFS: cost-0 moves go to the front
  queue.push_back(start);

  ExactResult result;
  const std::int64_t m = memory;

  auto relax = [&](State from, State to, std::int32_t weight,
                   VertexId computed_vertex) {
    const std::int32_t nd = dist[from] + weight;
    auto [it, inserted] =
        dist.try_emplace(to, std::numeric_limits<std::int32_t>::max());
    if (nd < it->second) {
      it->second = nd;
      if (options.reconstruct_order) pred[to] = {from, computed_vertex};
      if (weight == 0)
        queue.push_front(to);
      else
        queue.push_back(to);
    }
  };

  State goal_state = 0;
  bool found = false;
  while (!queue.empty()) {
    const State s = queue.front();
    queue.pop_front();
    const Mask computed = pack.computed(s);
    const Mask resident = pack.resident(s);
    const Mask written = pack.written(s);

    if (computed == all) {
      result.io = dist[s];
      goal_state = s;
      found = true;
      break;
    }
    ++result.states_expanded;
    if (result.states_expanded > options.max_states) break;

    // A popped state may be stale (0-1 BFS enqueues duplicates when a
    // state improves); re-expanding is harmless because relax() always
    // reads the current best distance of `s`.

    // --- compute moves ---------------------------------------------------
    for (VertexId v = 0; v < n; ++v) {
      const Mask bit = Mask{1} << v;
      if ((computed & bit) != 0) continue;
      if ((parents[static_cast<std::size_t>(v)] & ~resident) != 0) continue;
      const Mask new_computed = computed | bit;
      const Mask live_after = live_mask(new_computed);
      Mask new_resident = resident & live_after;
      const Mask new_written = written & live_after;
      const bool needs_slot =
          (children[static_cast<std::size_t>(v)] & ~new_computed) != 0;
      if (!needs_slot) {
        relax(s, pack.make(new_computed, new_resident, new_written), 0, v);
        continue;
      }
      if (std::popcount(new_resident) < m) {
        relax(s,
              pack.make(new_computed, new_resident | bit, new_written), 0,
              v);
        continue;
      }
      // Memory full after the surviving operands: fuse one eviction into
      // the move (write the victim if it was never persisted). The victim
      // may also be v itself — "compute and write out immediately".
      Mask victims = new_resident | bit;
      while (victims != 0) {
        const int u = std::countr_zero(victims);
        victims &= victims - 1;
        const Mask ubit = Mask{1} << u;
        const Mask r2 = (new_resident | bit) & ~ubit;
        const bool pay = (new_written & ubit) == 0;  // live by construction
        relax(s, pack.make(new_computed, r2, new_written | ubit),
              pay ? 1 : 0, v);
      }
    }

    // --- evict moves -------------------------------------------------------
    Mask evictable = resident;
    while (evictable != 0) {
      const int u = std::countr_zero(evictable);
      evictable &= evictable - 1;
      const Mask ubit = Mask{1} << u;
      const bool pay = (written & ubit) == 0;  // canonical ⇒ u is live
      relax(s, pack.make(computed, resident & ~ubit, written | ubit),
            pay ? 1 : 0, -1);
    }

    // --- read moves ----------------------------------------------------
    if (std::popcount(resident) < m) {
      Mask readable = written & ~resident;
      while (readable != 0) {
        const int u = std::countr_zero(readable);
        readable &= readable - 1;
        relax(s, pack.make(computed, resident | (Mask{1} << u), written), 1,
              -1);
      }
    }
  }

  result.complete = found;
  if (found && options.reconstruct_order) {
    std::vector<VertexId> rev;
    State cur = goal_state;
    while (cur != start) {
      const Move& mv = pred.at(cur);
      if (mv.computed_vertex >= 0) rev.push_back(mv.computed_vertex);
      cur = mv.from;
    }
    result.order.assign(rev.rbegin(), rev.rend());
  }
  return result;
}

}  // namespace graphio::exact
