// Exact optimal I/O for small computation graphs.
//
// The paper (and every bound in this library) targets J*(G) — the I/O of
// the *best* evaluation order under the Section 3 memory model. For graphs
// of up to ~20 vertices J* can be computed exactly by shortest-path search
// over machine states, which gives the test suite a ground truth that
// every lower bound must stay below and every simulated schedule must stay
// above:
//
//     spectral / min-cut lower bounds  ≤  J*(G)  ≤  simulate_io(any order).
//
// The state is (computed set C, fast-memory contents R, written set W).
// Moves mirror the model exactly (see sim/memsim.hpp for the scheduling
// counterpart):
//   * compute v (cost 0): all distinct parents of v resident; v joins R if
//     it still has uncomputed consumers; values whose last consumer was v
//     leave R and W (dead values are dropped eagerly — they can never be
//     useful again, so canonical states never retain them);
//   * evict u ∈ R (cost 1 if u is live and unwritten — the model forbids
//     recomputation, so a still-needed value must be persisted; cost 0 if
//     u was already written);
//   * read u (cost 1): u written, not resident, and a slot is free.
// Inputs are computed with no parents (the paper's free first-touch rule),
// and sinks are reported immediately, so trivial I/O never appears.
//
// The search is 0-1 BFS (Dijkstra with unit weights) over states encoded
// in 64 bits, which caps the vertex count at 21.
#pragma once

#include <cstdint>
#include <vector>

#include "graphio/graph/digraph.hpp"

namespace graphio::exact {

/// Hard limit on graph size: states pack 3 bit-sets of n bits into 64 bits.
inline constexpr std::int64_t kMaxExactVertices = 21;

struct ExactOptions {
  /// Search state cap; when exceeded the result is marked incomplete.
  std::int64_t max_states = 20'000'000;
  /// Also reconstruct one optimal evaluation order (costs extra memory).
  bool reconstruct_order = false;
};

struct ExactResult {
  /// Optimal non-trivial I/O J*(G), or -1 when the search was cut off.
  std::int64_t io = -1;
  /// True when the search ran to completion (io is exact, not a cutoff).
  bool complete = false;
  std::int64_t states_expanded = 0;
  /// An optimal topological evaluation order (only when requested). Note
  /// that replaying it through simulate_io may cost *more* than `io`:
  /// the search also optimizes eviction decisions, which Belady's rule
  /// does not capture once writes have distinct costs.
  std::vector<VertexId> order;
};

/// Computes J*(G) exactly for graphs with at most kMaxExactVertices
/// vertices. Throws if the graph is too large, cyclic, or if `memory` is
/// smaller than some vertex's distinct-operand count plus its own slot
/// requirement (such graphs cannot be evaluated at all in the model).
ExactResult exact_optimal_io(const Digraph& g, std::int64_t memory,
                             const ExactOptions& options = {});

}  // namespace graphio::exact
