// Exhaustive enumeration utilities for small graphs.
//
// These are deliberately brute-force reference implementations used by the
// test suite to certify the cleverer machinery:
//   * every topological order — validates schedule heuristics and the
//     claim that simulate_io minimized over all orders upper-bounds J*;
//   * every down-closed vertex set — validates the Dinic-based convex
//     min-cut reduction C(v, G) against its set-theoretic definition.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graphio/graph/digraph.hpp"

namespace graphio::exact {

/// Invokes `visit` once per topological order of g (lexicographically by
/// vertex id). `visit` returns false to stop the enumeration early.
/// Returns the number of orders visited.
std::int64_t for_each_topological_order(
    const Digraph& g,
    const std::function<bool(const std::vector<VertexId>&)>& visit);

/// Number of topological orders, stopping at `cap` (graphs have
/// exponentially many orders; the cap keeps tests bounded).
std::int64_t count_topological_orders(const Digraph& g, std::int64_t cap);

/// min over all topological orders of simulate_io(g, order, memory) under
/// the Belady policy. Exponential — small graphs only. This is an upper
/// bound on J*(G) that can still exceed exact_optimal_io (Belady eviction
/// is not optimal once spills have write costs).
std::int64_t min_simulated_io_over_all_orders(const Digraph& g,
                                              std::int64_t memory);

/// Brute-force C(v, G): the minimum wavefront |{u ∈ S : ∃(u,w) ∈ E,
/// w ∉ S}| over all down-closed S that contain v and exclude v's strict
/// descendants — the set-theoretic definition that flow::wavefront_mincut
/// computes via max-flow. Requires n ≤ 24 (enumerates all vertex subsets).
std::int64_t brute_force_wavefront(const Digraph& g, VertexId v);

}  // namespace graphio::exact
