#include "graphio/exact/enumerate.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "graphio/sim/memsim.hpp"
#include "graphio/support/contracts.hpp"

namespace graphio::exact {

namespace {

struct OrderEnumerator {
  const Digraph& g;
  const std::function<bool(const std::vector<VertexId>&)>& visit;
  std::vector<std::int64_t> missing;
  std::vector<VertexId> order;
  std::int64_t visited = 0;
  bool stopped = false;

  void recurse() {
    if (stopped) return;
    const std::int64_t n = g.num_vertices();
    if (static_cast<std::int64_t>(order.size()) == n) {
      ++visited;
      if (!visit(order)) stopped = true;
      return;
    }
    for (VertexId v = 0; v < n; ++v) {
      if (missing[static_cast<std::size_t>(v)] != 0) continue;
      // Take v.
      missing[static_cast<std::size_t>(v)] = -1;  // mark placed
      for (VertexId c : g.children(v)) --missing[static_cast<std::size_t>(c)];
      order.push_back(v);
      recurse();
      order.pop_back();
      for (VertexId c : g.children(v)) ++missing[static_cast<std::size_t>(c)];
      missing[static_cast<std::size_t>(v)] = 0;
      if (stopped) return;
    }
  }
};

}  // namespace

std::int64_t for_each_topological_order(
    const Digraph& g,
    const std::function<bool(const std::vector<VertexId>&)>& visit) {
  OrderEnumerator e{g, visit, {}, {}, 0, false};
  const std::int64_t n = g.num_vertices();
  e.missing.resize(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v)
    e.missing[static_cast<std::size_t>(v)] = g.in_degree(v);
  e.order.reserve(static_cast<std::size_t>(n));
  e.recurse();
  return e.visited;
}

std::int64_t count_topological_orders(const Digraph& g, std::int64_t cap) {
  std::int64_t count = 0;
  for_each_topological_order(g, [&](const std::vector<VertexId>&) {
    ++count;
    return count < cap;
  });
  return count;
}

std::int64_t min_simulated_io_over_all_orders(const Digraph& g,
                                              std::int64_t memory) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for_each_topological_order(g, [&](const std::vector<VertexId>& order) {
    best = std::min(best, sim::simulate_io(g, order, memory).total());
    return true;
  });
  GIO_ENSURES(best != std::numeric_limits<std::int64_t>::max());
  return best;
}

std::int64_t brute_force_wavefront(const Digraph& g, VertexId v) {
  const std::int64_t n = g.num_vertices();
  GIO_EXPECTS(g.contains(v));
  GIO_EXPECTS_MSG(n <= 24, "brute force enumerates all 2^n subsets");
  if (g.out_degree(v) == 0) return 0;

  using Mask = std::uint32_t;
  std::vector<Mask> parents(static_cast<std::size_t>(n), 0);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId p : g.parents(u))
      parents[static_cast<std::size_t>(u)] |= Mask{1} << p;

  // Strict descendants of v (must be outside S).
  Mask descendants = 0;
  {
    std::vector<VertexId> stack(g.children(v).begin(), g.children(v).end());
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      if ((descendants & (Mask{1} << u)) != 0) continue;
      descendants |= Mask{1} << u;
      for (VertexId c : g.children(u)) stack.push_back(c);
    }
  }

  const Mask vbit = Mask{1} << v;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  const Mask limit = n == 32 ? ~Mask{0} : (Mask{1} << n) - 1;
  for (Mask s = 0; s <= limit; ++s) {
    if ((s & vbit) == 0) continue;
    if ((s & descendants) != 0) continue;
    // Down-closed: every member's parents are members.
    bool closed = true;
    Mask rest = s;
    while (rest != 0 && closed) {
      const int u = std::countr_zero(rest);
      rest &= rest - 1;
      if ((parents[static_cast<std::size_t>(u)] & ~s) != 0) closed = false;
    }
    if (!closed) continue;
    // Wavefront: members with an edge leaving S.
    std::int64_t wavefront = 0;
    Mask members = s;
    while (members != 0) {
      const int u = std::countr_zero(members);
      members &= members - 1;
      for (VertexId c : g.children(u)) {
        if ((s & (Mask{1} << c)) == 0) {
          ++wavefront;
          break;
        }
      }
    }
    best = std::min(best, wavefront);
    if (best == 0) break;
  }
  return best;
}

}  // namespace graphio::exact
