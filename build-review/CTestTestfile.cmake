# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/graphio_tests[1]_include.cmake")
