file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_runtime.dir/bench/fig11_runtime.cpp.o"
  "CMakeFiles/bench_fig11_runtime.dir/bench/fig11_runtime.cpp.o.d"
  "bench_fig11_runtime"
  "bench_fig11_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
