# Empty compiler generated dependencies file for bench_fig11_runtime.
# This may be replaced when dependencies are built.
