file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_flow.dir/bench/micro_flow.cpp.o"
  "CMakeFiles/bench_micro_flow.dir/bench/micro_flow.cpp.o.d"
  "bench_micro_flow"
  "bench_micro_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
