# Empty dependencies file for bench_micro_flow.
# This may be replaced when dependencies are built.
