# Empty compiler generated dependencies file for bench_ablation_relaxation.
# This may be replaced when dependencies are built.
