file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_relaxation.dir/bench/ablation_relaxation.cpp.o"
  "CMakeFiles/bench_ablation_relaxation.dir/bench/ablation_relaxation.cpp.o.d"
  "bench_ablation_relaxation"
  "bench_ablation_relaxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_relaxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
