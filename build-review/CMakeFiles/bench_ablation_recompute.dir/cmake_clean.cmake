file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_recompute.dir/bench/ablation_recompute.cpp.o"
  "CMakeFiles/bench_ablation_recompute.dir/bench/ablation_recompute.cpp.o.d"
  "bench_ablation_recompute"
  "bench_ablation_recompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
