# Empty compiler generated dependencies file for bench_ablation_recompute.
# This may be replaced when dependencies are built.
