file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_matmul.dir/bench/fig08_matmul.cpp.o"
  "CMakeFiles/bench_fig08_matmul.dir/bench/fig08_matmul.cpp.o.d"
  "bench_fig08_matmul"
  "bench_fig08_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
