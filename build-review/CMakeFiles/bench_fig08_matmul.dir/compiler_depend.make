# Empty compiler generated dependencies file for bench_fig08_matmul.
# This may be replaced when dependencies are built.
