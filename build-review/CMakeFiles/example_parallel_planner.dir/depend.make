# Empty dependencies file for example_parallel_planner.
# This may be replaced when dependencies are built.
