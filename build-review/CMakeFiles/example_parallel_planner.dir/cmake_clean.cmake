file(REMOVE_RECURSE
  "CMakeFiles/example_parallel_planner.dir/examples/parallel_planner.cpp.o"
  "CMakeFiles/example_parallel_planner.dir/examples/parallel_planner.cpp.o.d"
  "example_parallel_planner"
  "example_parallel_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_parallel_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
