file(REMOVE_RECURSE
  "CMakeFiles/bench_solver_policy.dir/bench/solver_policy.cpp.o"
  "CMakeFiles/bench_solver_policy.dir/bench/solver_policy.cpp.o.d"
  "bench_solver_policy"
  "bench_solver_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
