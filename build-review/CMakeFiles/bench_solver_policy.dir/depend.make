# Empty dependencies file for bench_solver_policy.
# This may be replaced when dependencies are built.
