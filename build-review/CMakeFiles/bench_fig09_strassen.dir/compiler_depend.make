# Empty compiler generated dependencies file for bench_fig09_strassen.
# This may be replaced when dependencies are built.
