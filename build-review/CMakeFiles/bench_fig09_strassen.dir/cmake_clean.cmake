file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_strassen.dir/bench/fig09_strassen.cpp.o"
  "CMakeFiles/bench_fig09_strassen.dir/bench/fig09_strassen.cpp.o.d"
  "bench_fig09_strassen"
  "bench_fig09_strassen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_strassen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
