file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_la.dir/bench/micro_la.cpp.o"
  "CMakeFiles/bench_micro_la.dir/bench/micro_la.cpp.o.d"
  "bench_micro_la"
  "bench_micro_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
