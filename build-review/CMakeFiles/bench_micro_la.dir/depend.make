# Empty dependencies file for bench_micro_la.
# This may be replaced when dependencies are built.
