file(REMOVE_RECURSE
  "CMakeFiles/example_parallel_speedup.dir/examples/parallel_speedup.cpp.o"
  "CMakeFiles/example_parallel_speedup.dir/examples/parallel_speedup.cpp.o.d"
  "example_parallel_speedup"
  "example_parallel_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_parallel_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
