# Empty dependencies file for example_parallel_speedup.
# This may be replaced when dependencies are built.
