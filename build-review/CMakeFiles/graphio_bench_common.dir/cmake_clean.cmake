file(REMOVE_RECURSE
  "CMakeFiles/graphio_bench_common.dir/bench/bench_common.cpp.o"
  "CMakeFiles/graphio_bench_common.dir/bench/bench_common.cpp.o.d"
  "libgraphio_bench_common.a"
  "libgraphio_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphio_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
