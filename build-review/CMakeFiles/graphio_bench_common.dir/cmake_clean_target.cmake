file(REMOVE_RECURSE
  "libgraphio_bench_common.a"
)
