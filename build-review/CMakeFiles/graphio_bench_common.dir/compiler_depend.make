# Empty compiler generated dependencies file for graphio_bench_common.
# This may be replaced when dependencies are built.
