# Empty compiler generated dependencies file for graphio_cli.
# This may be replaced when dependencies are built.
