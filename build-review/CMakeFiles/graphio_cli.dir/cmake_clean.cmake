file(REMOVE_RECURSE
  "CMakeFiles/graphio_cli.dir/tools/graphio_cli.cpp.o"
  "CMakeFiles/graphio_cli.dir/tools/graphio_cli.cpp.o.d"
  "graphio"
  "graphio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphio_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
