# Empty dependencies file for bench_hierarchy.
# This may be replaced when dependencies are built.
