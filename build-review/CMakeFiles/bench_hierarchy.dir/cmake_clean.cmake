file(REMOVE_RECURSE
  "CMakeFiles/bench_hierarchy.dir/bench/hierarchy.cpp.o"
  "CMakeFiles/bench_hierarchy.dir/bench/hierarchy.cpp.o.d"
  "bench_hierarchy"
  "bench_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
