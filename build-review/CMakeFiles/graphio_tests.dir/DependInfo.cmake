
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_analytic_test.cpp" "CMakeFiles/graphio_tests.dir/tests/core_analytic_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/core_analytic_test.cpp.o.d"
  "/root/repo/tests/core_bound_test.cpp" "CMakeFiles/graphio_tests.dir/tests/core_bound_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/core_bound_test.cpp.o.d"
  "/root/repo/tests/core_hierarchy_test.cpp" "CMakeFiles/graphio_tests.dir/tests/core_hierarchy_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/core_hierarchy_test.cpp.o.d"
  "/root/repo/tests/core_parallel_bound_test.cpp" "CMakeFiles/graphio_tests.dir/tests/core_parallel_bound_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/core_parallel_bound_test.cpp.o.d"
  "/root/repo/tests/core_partition_dp_test.cpp" "CMakeFiles/graphio_tests.dir/tests/core_partition_dp_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/core_partition_dp_test.cpp.o.d"
  "/root/repo/tests/core_partition_test.cpp" "CMakeFiles/graphio_tests.dir/tests/core_partition_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/core_partition_test.cpp.o.d"
  "/root/repo/tests/core_pipeline_test.cpp" "CMakeFiles/graphio_tests.dir/tests/core_pipeline_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/core_pipeline_test.cpp.o.d"
  "/root/repo/tests/core_spectrum_test.cpp" "CMakeFiles/graphio_tests.dir/tests/core_spectrum_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/core_spectrum_test.cpp.o.d"
  "/root/repo/tests/engine_component_cache_test.cpp" "CMakeFiles/graphio_tests.dir/tests/engine_component_cache_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/engine_component_cache_test.cpp.o.d"
  "/root/repo/tests/engine_test.cpp" "CMakeFiles/graphio_tests.dir/tests/engine_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/engine_test.cpp.o.d"
  "/root/repo/tests/exact_pebble_test.cpp" "CMakeFiles/graphio_tests.dir/tests/exact_pebble_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/exact_pebble_test.cpp.o.d"
  "/root/repo/tests/exact_recompute_test.cpp" "CMakeFiles/graphio_tests.dir/tests/exact_recompute_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/exact_recompute_test.cpp.o.d"
  "/root/repo/tests/flow_dinic_test.cpp" "CMakeFiles/graphio_tests.dir/tests/flow_dinic_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/flow_dinic_test.cpp.o.d"
  "/root/repo/tests/flow_mincut_test.cpp" "CMakeFiles/graphio_tests.dir/tests/flow_mincut_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/flow_mincut_test.cpp.o.d"
  "/root/repo/tests/flow_push_relabel_test.cpp" "CMakeFiles/graphio_tests.dir/tests/flow_push_relabel_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/flow_push_relabel_test.cpp.o.d"
  "/root/repo/tests/graph_builders_extended_test.cpp" "CMakeFiles/graphio_tests.dir/tests/graph_builders_extended_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/graph_builders_extended_test.cpp.o.d"
  "/root/repo/tests/graph_builders_test.cpp" "CMakeFiles/graphio_tests.dir/tests/graph_builders_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/graph_builders_test.cpp.o.d"
  "/root/repo/tests/graph_components_test.cpp" "CMakeFiles/graphio_tests.dir/tests/graph_components_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/graph_components_test.cpp.o.d"
  "/root/repo/tests/graph_digraph_test.cpp" "CMakeFiles/graphio_tests.dir/tests/graph_digraph_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/graph_digraph_test.cpp.o.d"
  "/root/repo/tests/graph_dot_test.cpp" "CMakeFiles/graphio_tests.dir/tests/graph_dot_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/graph_dot_test.cpp.o.d"
  "/root/repo/tests/graph_laplacian_test.cpp" "CMakeFiles/graphio_tests.dir/tests/graph_laplacian_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/graph_laplacian_test.cpp.o.d"
  "/root/repo/tests/graph_topo_test.cpp" "CMakeFiles/graphio_tests.dir/tests/graph_topo_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/graph_topo_test.cpp.o.d"
  "/root/repo/tests/graph_transforms_test.cpp" "CMakeFiles/graphio_tests.dir/tests/graph_transforms_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/graph_transforms_test.cpp.o.d"
  "/root/repo/tests/integration_extended_test.cpp" "CMakeFiles/graphio_tests.dir/tests/integration_extended_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/integration_extended_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "CMakeFiles/graphio_tests.dir/tests/integration_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/integration_test.cpp.o.d"
  "/root/repo/tests/io_test.cpp" "CMakeFiles/graphio_tests.dir/tests/io_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/io_test.cpp.o.d"
  "/root/repo/tests/la_csr_test.cpp" "CMakeFiles/graphio_tests.dir/tests/la_csr_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/la_csr_test.cpp.o.d"
  "/root/repo/tests/la_dense_test.cpp" "CMakeFiles/graphio_tests.dir/tests/la_dense_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/la_dense_test.cpp.o.d"
  "/root/repo/tests/la_extra_test.cpp" "CMakeFiles/graphio_tests.dir/tests/la_extra_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/la_extra_test.cpp.o.d"
  "/root/repo/tests/la_lanczos_test.cpp" "CMakeFiles/graphio_tests.dir/tests/la_lanczos_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/la_lanczos_test.cpp.o.d"
  "/root/repo/tests/la_lobpcg_test.cpp" "CMakeFiles/graphio_tests.dir/tests/la_lobpcg_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/la_lobpcg_test.cpp.o.d"
  "/root/repo/tests/la_solver_policy_test.cpp" "CMakeFiles/graphio_tests.dir/tests/la_solver_policy_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/la_solver_policy_test.cpp.o.d"
  "/root/repo/tests/la_tridiagonal_test.cpp" "CMakeFiles/graphio_tests.dir/tests/la_tridiagonal_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/la_tridiagonal_test.cpp.o.d"
  "/root/repo/tests/property_extensions_test.cpp" "CMakeFiles/graphio_tests.dir/tests/property_extensions_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/property_extensions_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "CMakeFiles/graphio_tests.dir/tests/property_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/property_test.cpp.o.d"
  "/root/repo/tests/serve_test.cpp" "CMakeFiles/graphio_tests.dir/tests/serve_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/serve_test.cpp.o.d"
  "/root/repo/tests/sim_anneal_test.cpp" "CMakeFiles/graphio_tests.dir/tests/sim_anneal_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/sim_anneal_test.cpp.o.d"
  "/root/repo/tests/sim_memsim_test.cpp" "CMakeFiles/graphio_tests.dir/tests/sim_memsim_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/sim_memsim_test.cpp.o.d"
  "/root/repo/tests/sim_parallel_memsim_test.cpp" "CMakeFiles/graphio_tests.dir/tests/sim_parallel_memsim_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/sim_parallel_memsim_test.cpp.o.d"
  "/root/repo/tests/sim_schedule_test.cpp" "CMakeFiles/graphio_tests.dir/tests/sim_schedule_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/sim_schedule_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "CMakeFiles/graphio_tests.dir/tests/support_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/support_test.cpp.o.d"
  "/root/repo/tests/trace_programs_test.cpp" "CMakeFiles/graphio_tests.dir/tests/trace_programs_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/trace_programs_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "CMakeFiles/graphio_tests.dir/tests/trace_test.cpp.o" "gcc" "CMakeFiles/graphio_tests.dir/tests/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/graphio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
