# Empty dependencies file for graphio_tests.
# This may be replaced when dependencies are built.
