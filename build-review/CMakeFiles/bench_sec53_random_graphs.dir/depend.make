# Empty dependencies file for bench_sec53_random_graphs.
# This may be replaced when dependencies are built.
