file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_random_graphs.dir/bench/sec53_random_graphs.cpp.o"
  "CMakeFiles/bench_sec53_random_graphs.dir/bench/sec53_random_graphs.cpp.o.d"
  "bench_sec53_random_graphs"
  "bench_sec53_random_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_random_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
