file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reduction.dir/bench/ablation_reduction.cpp.o"
  "CMakeFiles/bench_ablation_reduction.dir/bench/ablation_reduction.cpp.o.d"
  "bench_ablation_reduction"
  "bench_ablation_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
