# Empty dependencies file for bench_ablation_reduction.
# This may be replaced when dependencies are built.
