# Empty dependencies file for example_trace_polynomial.
# This may be replaced when dependencies are built.
