file(REMOVE_RECURSE
  "CMakeFiles/example_trace_polynomial.dir/examples/trace_polynomial.cpp.o"
  "CMakeFiles/example_trace_polynomial.dir/examples/trace_polynomial.cpp.o.d"
  "example_trace_polynomial"
  "example_trace_polynomial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_polynomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
