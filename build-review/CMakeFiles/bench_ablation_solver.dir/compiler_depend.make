# Empty compiler generated dependencies file for bench_ablation_solver.
# This may be replaced when dependencies are built.
