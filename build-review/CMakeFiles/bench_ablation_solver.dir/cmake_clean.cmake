file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_solver.dir/bench/ablation_solver.cpp.o"
  "CMakeFiles/bench_ablation_solver.dir/bench/ablation_solver.cpp.o.d"
  "bench_ablation_solver"
  "bench_ablation_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
