file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_k.dir/bench/ablation_k.cpp.o"
  "CMakeFiles/bench_ablation_k.dir/bench/ablation_k.cpp.o.d"
  "bench_ablation_k"
  "bench_ablation_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
