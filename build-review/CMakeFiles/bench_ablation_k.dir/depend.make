# Empty dependencies file for bench_ablation_k.
# This may be replaced when dependencies are built.
