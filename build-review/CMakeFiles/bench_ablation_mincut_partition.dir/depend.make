# Empty dependencies file for bench_ablation_mincut_partition.
# This may be replaced when dependencies are built.
