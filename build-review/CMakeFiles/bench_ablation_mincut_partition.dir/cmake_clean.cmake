file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mincut_partition.dir/bench/ablation_mincut_partition.cpp.o"
  "CMakeFiles/bench_ablation_mincut_partition.dir/bench/ablation_mincut_partition.cpp.o.d"
  "bench_ablation_mincut_partition"
  "bench_ablation_mincut_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mincut_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
