file(REMOVE_RECURSE
  "CMakeFiles/example_tsp_memory_planner.dir/examples/tsp_memory_planner.cpp.o"
  "CMakeFiles/example_tsp_memory_planner.dir/examples/tsp_memory_planner.cpp.o.d"
  "example_tsp_memory_planner"
  "example_tsp_memory_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tsp_memory_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
