# Empty dependencies file for example_tsp_memory_planner.
# This may be replaced when dependencies are built.
