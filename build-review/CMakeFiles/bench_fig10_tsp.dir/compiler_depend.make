# Empty compiler generated dependencies file for bench_fig10_tsp.
# This may be replaced when dependencies are built.
