file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tsp.dir/bench/fig10_tsp.cpp.o"
  "CMakeFiles/bench_fig10_tsp.dir/bench/fig10_tsp.cpp.o.d"
  "bench_fig10_tsp"
  "bench_fig10_tsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
