file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_closed_forms.dir/bench/sec5_closed_forms.cpp.o"
  "CMakeFiles/bench_sec5_closed_forms.dir/bench/sec5_closed_forms.cpp.o.d"
  "bench_sec5_closed_forms"
  "bench_sec5_closed_forms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_closed_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
