# Empty dependencies file for bench_sec5_closed_forms.
# This may be replaced when dependencies are built.
