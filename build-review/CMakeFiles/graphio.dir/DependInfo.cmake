
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graphio/core/analytic_bounds.cpp" "CMakeFiles/graphio.dir/src/graphio/core/analytic_bounds.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/core/analytic_bounds.cpp.o.d"
  "/root/repo/src/graphio/core/analytic_spectra.cpp" "CMakeFiles/graphio.dir/src/graphio/core/analytic_spectra.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/core/analytic_spectra.cpp.o.d"
  "/root/repo/src/graphio/core/hierarchy.cpp" "CMakeFiles/graphio.dir/src/graphio/core/hierarchy.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/core/hierarchy.cpp.o.d"
  "/root/repo/src/graphio/core/partition.cpp" "CMakeFiles/graphio.dir/src/graphio/core/partition.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/core/partition.cpp.o.d"
  "/root/repo/src/graphio/core/partition_dp.cpp" "CMakeFiles/graphio.dir/src/graphio/core/partition_dp.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/core/partition_dp.cpp.o.d"
  "/root/repo/src/graphio/core/published.cpp" "CMakeFiles/graphio.dir/src/graphio/core/published.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/core/published.cpp.o.d"
  "/root/repo/src/graphio/core/spectral_bound.cpp" "CMakeFiles/graphio.dir/src/graphio/core/spectral_bound.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/core/spectral_bound.cpp.o.d"
  "/root/repo/src/graphio/core/spectral_pipeline.cpp" "CMakeFiles/graphio.dir/src/graphio/core/spectral_pipeline.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/core/spectral_pipeline.cpp.o.d"
  "/root/repo/src/graphio/core/spectrum.cpp" "CMakeFiles/graphio.dir/src/graphio/core/spectrum.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/core/spectrum.cpp.o.d"
  "/root/repo/src/graphio/engine/artifact_cache.cpp" "CMakeFiles/graphio.dir/src/graphio/engine/artifact_cache.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/engine/artifact_cache.cpp.o.d"
  "/root/repo/src/graphio/engine/component_cache.cpp" "CMakeFiles/graphio.dir/src/graphio/engine/component_cache.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/engine/component_cache.cpp.o.d"
  "/root/repo/src/graphio/engine/engine.cpp" "CMakeFiles/graphio.dir/src/graphio/engine/engine.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/engine/engine.cpp.o.d"
  "/root/repo/src/graphio/engine/fingerprint.cpp" "CMakeFiles/graphio.dir/src/graphio/engine/fingerprint.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/engine/fingerprint.cpp.o.d"
  "/root/repo/src/graphio/engine/graph_spec.cpp" "CMakeFiles/graphio.dir/src/graphio/engine/graph_spec.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/engine/graph_spec.cpp.o.d"
  "/root/repo/src/graphio/engine/methods.cpp" "CMakeFiles/graphio.dir/src/graphio/engine/methods.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/engine/methods.cpp.o.d"
  "/root/repo/src/graphio/engine/report.cpp" "CMakeFiles/graphio.dir/src/graphio/engine/report.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/engine/report.cpp.o.d"
  "/root/repo/src/graphio/exact/enumerate.cpp" "CMakeFiles/graphio.dir/src/graphio/exact/enumerate.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/exact/enumerate.cpp.o.d"
  "/root/repo/src/graphio/exact/pebble_recompute.cpp" "CMakeFiles/graphio.dir/src/graphio/exact/pebble_recompute.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/exact/pebble_recompute.cpp.o.d"
  "/root/repo/src/graphio/exact/pebble_search.cpp" "CMakeFiles/graphio.dir/src/graphio/exact/pebble_search.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/exact/pebble_search.cpp.o.d"
  "/root/repo/src/graphio/flow/convex_mincut.cpp" "CMakeFiles/graphio.dir/src/graphio/flow/convex_mincut.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/flow/convex_mincut.cpp.o.d"
  "/root/repo/src/graphio/flow/dinic.cpp" "CMakeFiles/graphio.dir/src/graphio/flow/dinic.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/flow/dinic.cpp.o.d"
  "/root/repo/src/graphio/flow/partitioner.cpp" "CMakeFiles/graphio.dir/src/graphio/flow/partitioner.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/flow/partitioner.cpp.o.d"
  "/root/repo/src/graphio/flow/push_relabel.cpp" "CMakeFiles/graphio.dir/src/graphio/flow/push_relabel.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/flow/push_relabel.cpp.o.d"
  "/root/repo/src/graphio/graph/builders/classic.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/builders/classic.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/builders/classic.cpp.o.d"
  "/root/repo/src/graphio/graph/builders/erdos_renyi.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/builders/erdos_renyi.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/builders/erdos_renyi.cpp.o.d"
  "/root/repo/src/graphio/graph/builders/extended.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/builders/extended.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/builders/extended.cpp.o.d"
  "/root/repo/src/graphio/graph/builders/fft.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/builders/fft.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/builders/fft.cpp.o.d"
  "/root/repo/src/graphio/graph/builders/hypercube.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/builders/hypercube.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/builders/hypercube.cpp.o.d"
  "/root/repo/src/graphio/graph/builders/inner_product.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/builders/inner_product.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/builders/inner_product.cpp.o.d"
  "/root/repo/src/graphio/graph/builders/matmul.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/builders/matmul.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/builders/matmul.cpp.o.d"
  "/root/repo/src/graphio/graph/builders/strassen.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/builders/strassen.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/builders/strassen.cpp.o.d"
  "/root/repo/src/graphio/graph/components.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/components.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/components.cpp.o.d"
  "/root/repo/src/graphio/graph/digraph.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/digraph.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/digraph.cpp.o.d"
  "/root/repo/src/graphio/graph/dot.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/dot.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/dot.cpp.o.d"
  "/root/repo/src/graphio/graph/laplacian.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/laplacian.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/laplacian.cpp.o.d"
  "/root/repo/src/graphio/graph/topo.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/topo.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/topo.cpp.o.d"
  "/root/repo/src/graphio/graph/transforms.cpp" "CMakeFiles/graphio.dir/src/graphio/graph/transforms.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/graph/transforms.cpp.o.d"
  "/root/repo/src/graphio/io/edgelist.cpp" "CMakeFiles/graphio.dir/src/graphio/io/edgelist.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/io/edgelist.cpp.o.d"
  "/root/repo/src/graphio/io/json.cpp" "CMakeFiles/graphio.dir/src/graphio/io/json.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/io/json.cpp.o.d"
  "/root/repo/src/graphio/la/bisection.cpp" "CMakeFiles/graphio.dir/src/graphio/la/bisection.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/la/bisection.cpp.o.d"
  "/root/repo/src/graphio/la/csr_matrix.cpp" "CMakeFiles/graphio.dir/src/graphio/la/csr_matrix.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/la/csr_matrix.cpp.o.d"
  "/root/repo/src/graphio/la/dense_matrix.cpp" "CMakeFiles/graphio.dir/src/graphio/la/dense_matrix.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/la/dense_matrix.cpp.o.d"
  "/root/repo/src/graphio/la/householder.cpp" "CMakeFiles/graphio.dir/src/graphio/la/householder.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/la/householder.cpp.o.d"
  "/root/repo/src/graphio/la/jacobi.cpp" "CMakeFiles/graphio.dir/src/graphio/la/jacobi.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/la/jacobi.cpp.o.d"
  "/root/repo/src/graphio/la/lanczos.cpp" "CMakeFiles/graphio.dir/src/graphio/la/lanczos.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/la/lanczos.cpp.o.d"
  "/root/repo/src/graphio/la/lobpcg.cpp" "CMakeFiles/graphio.dir/src/graphio/la/lobpcg.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/la/lobpcg.cpp.o.d"
  "/root/repo/src/graphio/la/power_iteration.cpp" "CMakeFiles/graphio.dir/src/graphio/la/power_iteration.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/la/power_iteration.cpp.o.d"
  "/root/repo/src/graphio/la/solver_policy.cpp" "CMakeFiles/graphio.dir/src/graphio/la/solver_policy.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/la/solver_policy.cpp.o.d"
  "/root/repo/src/graphio/la/symmetric_eigen.cpp" "CMakeFiles/graphio.dir/src/graphio/la/symmetric_eigen.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/la/symmetric_eigen.cpp.o.d"
  "/root/repo/src/graphio/la/tridiagonal.cpp" "CMakeFiles/graphio.dir/src/graphio/la/tridiagonal.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/la/tridiagonal.cpp.o.d"
  "/root/repo/src/graphio/la/vector_ops.cpp" "CMakeFiles/graphio.dir/src/graphio/la/vector_ops.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/la/vector_ops.cpp.o.d"
  "/root/repo/src/graphio/serve/batch_session.cpp" "CMakeFiles/graphio.dir/src/graphio/serve/batch_session.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/serve/batch_session.cpp.o.d"
  "/root/repo/src/graphio/serve/job.cpp" "CMakeFiles/graphio.dir/src/graphio/serve/job.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/serve/job.cpp.o.d"
  "/root/repo/src/graphio/serve/job_queue.cpp" "CMakeFiles/graphio.dir/src/graphio/serve/job_queue.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/serve/job_queue.cpp.o.d"
  "/root/repo/src/graphio/serve/result_store.cpp" "CMakeFiles/graphio.dir/src/graphio/serve/result_store.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/serve/result_store.cpp.o.d"
  "/root/repo/src/graphio/serve/scheduler.cpp" "CMakeFiles/graphio.dir/src/graphio/serve/scheduler.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/serve/scheduler.cpp.o.d"
  "/root/repo/src/graphio/sim/anneal.cpp" "CMakeFiles/graphio.dir/src/graphio/sim/anneal.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/sim/anneal.cpp.o.d"
  "/root/repo/src/graphio/sim/memsim.cpp" "CMakeFiles/graphio.dir/src/graphio/sim/memsim.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/sim/memsim.cpp.o.d"
  "/root/repo/src/graphio/sim/parallel_memsim.cpp" "CMakeFiles/graphio.dir/src/graphio/sim/parallel_memsim.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/sim/parallel_memsim.cpp.o.d"
  "/root/repo/src/graphio/sim/schedule.cpp" "CMakeFiles/graphio.dir/src/graphio/sim/schedule.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/sim/schedule.cpp.o.d"
  "/root/repo/src/graphio/support/env.cpp" "CMakeFiles/graphio.dir/src/graphio/support/env.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/support/env.cpp.o.d"
  "/root/repo/src/graphio/support/table.cpp" "CMakeFiles/graphio.dir/src/graphio/support/table.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/support/table.cpp.o.d"
  "/root/repo/src/graphio/trace/programs.cpp" "CMakeFiles/graphio.dir/src/graphio/trace/programs.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/trace/programs.cpp.o.d"
  "/root/repo/src/graphio/trace/tape.cpp" "CMakeFiles/graphio.dir/src/graphio/trace/tape.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/trace/tape.cpp.o.d"
  "/root/repo/src/graphio/trace/value.cpp" "CMakeFiles/graphio.dir/src/graphio/trace/value.cpp.o" "gcc" "CMakeFiles/graphio.dir/src/graphio/trace/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
