# Empty dependencies file for graphio.
# This may be replaced when dependencies are built.
