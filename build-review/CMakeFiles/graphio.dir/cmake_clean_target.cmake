file(REMOVE_RECURSE
  "libgraphio.a"
)
