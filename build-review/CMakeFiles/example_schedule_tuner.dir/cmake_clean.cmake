file(REMOVE_RECURSE
  "CMakeFiles/example_schedule_tuner.dir/examples/schedule_tuner.cpp.o"
  "CMakeFiles/example_schedule_tuner.dir/examples/schedule_tuner.cpp.o.d"
  "example_schedule_tuner"
  "example_schedule_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_schedule_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
