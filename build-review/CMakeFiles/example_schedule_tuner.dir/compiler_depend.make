# Empty compiler generated dependencies file for example_schedule_tuner.
# This may be replaced when dependencies are built.
