file(REMOVE_RECURSE
  "CMakeFiles/example_graph_gallery.dir/examples/graph_gallery.cpp.o"
  "CMakeFiles/example_graph_gallery.dir/examples/graph_gallery.cpp.o.d"
  "example_graph_gallery"
  "example_graph_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_graph_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
