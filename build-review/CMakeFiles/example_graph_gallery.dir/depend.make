# Empty dependencies file for example_graph_gallery.
# This may be replaced when dependencies are built.
