# Empty compiler generated dependencies file for bench_tightness.
# This may be replaced when dependencies are built.
