file(REMOVE_RECURSE
  "CMakeFiles/bench_tightness.dir/bench/tightness.cpp.o"
  "CMakeFiles/bench_tightness.dir/bench/tightness.cpp.o.d"
  "bench_tightness"
  "bench_tightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
