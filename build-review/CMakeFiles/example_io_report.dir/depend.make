# Empty dependencies file for example_io_report.
# This may be replaced when dependencies are built.
