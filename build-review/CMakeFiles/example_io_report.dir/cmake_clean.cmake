file(REMOVE_RECURSE
  "CMakeFiles/example_io_report.dir/examples/io_report.cpp.o"
  "CMakeFiles/example_io_report.dir/examples/io_report.cpp.o.d"
  "example_io_report"
  "example_io_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_io_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
