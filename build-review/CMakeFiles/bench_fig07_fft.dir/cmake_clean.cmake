file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_fft.dir/bench/fig07_fft.cpp.o"
  "CMakeFiles/bench_fig07_fft.dir/bench/fig07_fft.cpp.o.d"
  "bench_fig07_fft"
  "bench_fig07_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
