# Empty dependencies file for bench_fig07_fft.
# This may be replaced when dependencies are built.
