file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_bound.dir/bench/parallel_bound.cpp.o"
  "CMakeFiles/bench_parallel_bound.dir/bench/parallel_bound.cpp.o.d"
  "bench_parallel_bound"
  "bench_parallel_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
