# Empty dependencies file for bench_parallel_bound.
# This may be replaced when dependencies are built.
