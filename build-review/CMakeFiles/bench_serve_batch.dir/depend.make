# Empty dependencies file for bench_serve_batch.
# This may be replaced when dependencies are built.
