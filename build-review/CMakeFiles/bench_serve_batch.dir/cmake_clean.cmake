file(REMOVE_RECURSE
  "CMakeFiles/bench_serve_batch.dir/bench/serve_batch.cpp.o"
  "CMakeFiles/bench_serve_batch.dir/bench/serve_batch.cpp.o.d"
  "bench_serve_batch"
  "bench_serve_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serve_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
