file(REMOVE_RECURSE
  "CMakeFiles/bench_new_workloads.dir/bench/new_workloads.cpp.o"
  "CMakeFiles/bench_new_workloads.dir/bench/new_workloads.cpp.o.d"
  "bench_new_workloads"
  "bench_new_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_new_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
