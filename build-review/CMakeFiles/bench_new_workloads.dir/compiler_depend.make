# Empty compiler generated dependencies file for bench_new_workloads.
# This may be replaced when dependencies are built.
